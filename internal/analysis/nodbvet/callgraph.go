package nodbvet

import (
	"go/ast"
	"go/types"
)

// CallGraph is a conservative intra-package reference graph: an edge A -> B
// exists when A's body mentions package function/method B at all (called,
// deferred, launched with go, passed as a value, used as a method value).
// Over-approximating references as calls errs toward checking more code,
// which is the right direction for an invariant checker.
type CallGraph struct {
	decls map[*types.Func]*ast.FuncDecl
	edges map[*types.Func][]*types.Func
}

// BuildCallGraph indexes every function declaration of the pass's package.
func BuildCallGraph(pass *Pass) *CallGraph {
	g := &CallGraph{
		decls: map[*types.Func]*ast.FuncDecl{},
		edges: map[*types.Func][]*types.Func{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[obj] = fn
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				callee, ok := pass.TypesInfo.Uses[id].(*types.Func)
				if !ok || callee.Pkg() != pass.Pkg {
					return true
				}
				g.edges[obj] = append(g.edges[obj], callee)
				return true
			})
		}
	}
	return g
}

// Decl returns the declaration of fn, if it is declared in this package.
func (g *CallGraph) Decl(fn *types.Func) (*ast.FuncDecl, bool) {
	d, ok := g.decls[fn]
	return d, ok
}

// ReachableFrom returns the set of package functions reachable from any
// declared function whose bare name is in roots (methods match by method
// name, so "Next" covers every operator's Next).
func (g *CallGraph) ReachableFrom(roots map[string]bool) map[*types.Func]bool {
	seen := map[*types.Func]bool{}
	var visit func(fn *types.Func)
	visit = func(fn *types.Func) {
		if seen[fn] {
			return
		}
		seen[fn] = true
		for _, callee := range g.edges[fn] {
			visit(callee)
		}
	}
	for fn := range g.decls {
		if roots[fn.Name()] {
			visit(fn)
		}
	}
	return seen
}
