// Package nodbvet is the engine-specific static-analysis framework behind
// cmd/nodbvet. It is a small, dependency-free workalike of
// golang.org/x/tools/go/analysis (this module deliberately has no external
// dependencies): an Analyzer inspects one type-checked package at a time
// and reports Diagnostics, and the drivers — the go vet -vettool protocol
// in cmd/nodbvet and the analysistest fixture harness — load packages and
// apply the shared suppression-directive rules.
//
// Suppressions are comment directives of the form
//
//	//nodbvet:<directive> <justification>
//
// placed on the flagged line or the line directly above it. Every
// suppression must carry a non-empty justification string; a bare
// directive is itself reported as a violation. The directive name for an
// analyzer is Analyzer.Directive (by convention "<name>-ok"; mapiter uses
// the historical "unordered-ok"). The //nodbvet:hotpath marker is not a
// suppression — it opts a function into the hotalloc analyzer.
package nodbvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named invariant check over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and CLI output.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Directive is the suppression directive ("<name>-ok" by convention);
	// a site carrying //nodbvet:<Directive> <justification> is exempt.
	Directive string
	// Run inspects the package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// Deps holds the facts exported by this package's (transitive)
	// dependencies; never nil. Out collects the facts this package exports
	// for its dependents — it is shared by every analyzer of the pass, so
	// fact names must be namespaced ("<analyzer>.<fact>").
	Deps *FactSet
	Out  *FactSet

	suppressed map[suppKey]bool // lazily built by SuppressedAt
}

type suppKey struct {
	file string
	line int
}

// SuppressedAt reports whether a finding of this pass's analyzer at pos
// would be dropped by the suppression rules (a justified
// //nodbvet:<Directive> on the same line or the line above). Analyzers
// that export facts consult it so a justified suppression also stops the
// fact from propagating to dependent packages — otherwise every caller of
// the suppressed function would re-report the finding the justification
// already settled.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	if p.suppressed == nil {
		p.suppressed = map[suppKey]bool{}
		for _, f := range p.Files {
			for _, d := range ParseDirectives(p.Fset, f) {
				if d.Name != p.Analyzer.Directive || d.Justification == "" {
					continue
				}
				file := p.Fset.Position(d.Pos).Filename
				p.suppressed[suppKey{file, d.Line}] = true
			}
		}
	}
	position := p.Fset.Position(pos)
	return p.suppressed[suppKey{position.Filename, position.Line}] ||
		p.suppressed[suppKey{position.Filename, position.Line - 1}]
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position plus a message. Category is filled
// by the driver with the analyzer name.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}

// DirectivePrefix introduces every nodbvet comment directive.
const DirectivePrefix = "//nodbvet:"

// HotpathDirective marks a function for the hotalloc analyzer.
const HotpathDirective = "hotpath"

// Directive is one parsed //nodbvet: comment.
type Directive struct {
	Pos           token.Pos
	Line          int
	Name          string // e.g. "unordered-ok", "hotpath"
	Justification string
}

// ParseDirectives extracts every //nodbvet: directive from a file. The
// directive applies to the line it is on (trailing comment) or the line
// below it (own-line comment) — both are recorded via Line, which callers
// match against diagnostic lines with a one-line tolerance.
func ParseDirectives(fset *token.FileSet, f *ast.File) []Directive {
	var ds []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, DirectivePrefix)
			if !ok {
				continue
			}
			name, just, _ := strings.Cut(text, " ")
			ds = append(ds, Directive{
				Pos:           c.Pos(),
				Line:          fset.Position(c.Pos()).Line,
				Name:          strings.TrimSpace(name),
				Justification: strings.TrimSpace(just),
			})
		}
	}
	return ds
}

// FuncHasDirective reports whether fn (or its doc comment) carries the
// named directive: in the doc group, or on any line from the doc through
// the "func" line itself.
func FuncHasDirective(fset *token.FileSet, f *ast.File, fn *ast.FuncDecl, name string) bool {
	start := fset.Position(fn.Pos()).Line
	if fn.Doc != nil {
		docStart := fset.Position(fn.Doc.Pos()).Line
		if docStart < start {
			start = docStart
		}
	}
	end := fset.Position(fn.Pos()).Line
	for _, d := range ParseDirectives(fset, f) {
		if d.Name == name && d.Line >= start && d.Line <= end {
			return true
		}
	}
	return false
}

// knownDirectives lists every directive name the suite understands; an
// unknown //nodbvet: directive is reported so typos cannot silently
// disable a check.
func knownDirectives(analyzers []*Analyzer) map[string]bool {
	known := map[string]bool{HotpathDirective: true}
	for _, a := range analyzers {
		known[a.Directive] = true
	}
	return known
}

// Filter applies the suppression rules to one package's diagnostics:
//
//   - a diagnostic whose line (or the line above) carries the reporting
//     analyzer's directive with a justification is dropped;
//   - a suppression directive with no justification is itself a finding;
//   - an unknown //nodbvet: directive is a finding.
//
// It returns the surviving diagnostics sorted by position.
func Filter(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer, diags []Diagnostic) []Diagnostic {
	byName := map[string]*Analyzer{}
	for _, a := range analyzers {
		byName[a.Category()] = a
	}
	known := knownDirectives(analyzers)

	// file -> line -> directive names present there.
	type key struct {
		file string
		line int
		name string
	}
	have := map[key]bool{}
	var out []Diagnostic
	for _, f := range files {
		for _, d := range ParseDirectives(fset, f) {
			if !known[d.Name] {
				out = append(out, Diagnostic{Pos: d.Pos, Category: "directive",
					Message: fmt.Sprintf("unknown nodbvet directive %q", d.Name)})
				continue
			}
			if d.Justification == "" && d.Name != HotpathDirective {
				out = append(out, Diagnostic{Pos: d.Pos, Category: "directive",
					Message: fmt.Sprintf("nodbvet:%s suppression requires a justification string", d.Name)})
				continue
			}
			file := fset.Position(d.Pos).Filename
			have[key{file, d.Line, d.Name}] = true
		}
	}

	for _, dg := range diags {
		a := byName[dg.Category]
		pos := fset.Position(dg.Pos)
		if a != nil &&
			(have[key{pos.Filename, pos.Line, a.Directive}] ||
				have[key{pos.Filename, pos.Line - 1, a.Directive}]) {
			continue
		}
		out = append(out, dg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Category returns the label diagnostics of a carry.
func (a *Analyzer) Category() string { return a.Name }

// RunAnalyzers executes each analyzer over the package and returns the
// suppressed-filtered findings plus the facts the package exports. deps
// carries the facts of the package's (transitive) dependencies; nil means
// none. The returned FactSet holds only this package's own facts — drivers
// that feed dependents merge it with deps themselves (cmd/nodbvet writes
// the union to the vetx file so one level of PackageVetx links yields the
// transitive closure).
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, deps *FactSet) ([]Diagnostic, *FactSet, error) {
	if deps == nil {
		deps = NewFactSet()
	}
	out := NewFactSet()
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Deps:      deps,
			Out:       out,
			Report: func(d Diagnostic) {
				d.Category = a.Category()
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	return Filter(fset, files, analyzers, diags), out, nil
}
