// Dep fixture for errtaxonomy: Parse lets a bare errors.New escape
// through its return, so it exports the errtaxonomy.untyped fact;
// ParseTyped speaks the faults taxonomy and exports nothing.
package value

import (
	"errors"
	"fmt"

	"nodb/internal/faults"
)

// Parse returns an untyped error: fact exported.
func Parse(s string) error {
	if s == "" {
		return errors.New("value: empty field")
	}
	return nil
}

// ParseIndirect taints transitively through Parse.
func ParseIndirect(s string) error {
	return Parse(s)
}

// ParseTyped wraps a faults sentinel: no fact.
func ParseTyped(s string) error {
	if s == "" {
		return fmt.Errorf("value: empty field: %w", faults.ErrMalformed)
	}
	return nil
}

// Validate builds an untyped error but handles it locally: the taxonomy
// only cares about errors that escape, so no fact.
func Validate(s string) bool {
	err := Parse(s)
	if err != nil {
		return false
	}
	return true
}
