// Fixture for the errtaxonomy analyzer. The package is named core, where
// Next/NextBatch/DrainAgg/splitter/worker/OpenScan root the scan paths.
package core

import (
	"errors"
	"fmt"

	"value"

	"nodb/internal/faults"
)

type scan struct{ path string }

// Next is a scan-path root: untyped constructions are flagged, faults
// constructors and %w-wrapped sentinels are clean.
func (s *scan) Next() error {
	if bad() {
		return errors.New("core: scan failed") // want `untyped errors.New on a scan path`
	}
	if worse() {
		return fmt.Errorf("core: row %d broken", 7) // want `does not verifiably wrap the faults taxonomy`
	}
	if err := s.read(); err != nil {
		return fmt.Errorf("core: reading %s: %w", s.path, faults.ErrIO)
	}
	return s.typed()
}

// typed is reachable from Next; a faults constructor wrapped with %w is the
// taxonomy-preserving shape.
func (s *scan) typed() error {
	return fmt.Errorf("core: chunk 0: %w", faults.Malformed(s.path, 0, 1, "a", "not an int"))
}

// DrainAgg carries a justified suppression for a caller-misuse error.
func (s *scan) DrainAgg() error {
	//nodbvet:errtaxonomy-ok API misuse by the caller, not a scan-path fault
	return errors.New("core: DrainAgg without PushAgg")
}

// validate is construction-time and unreachable from any scan root: plain
// errors are fine here.
func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("core: bad row count %d", n)
	}
	return nil
}

func (s *scan) read() error { return nil }

// OpenScan is a root consuming the dep's facts: untyped carriers whose
// error escapes through the return are flagged; wrapping, typed callees
// and locally-handled errors are clean.
func (s *scan) OpenScan(raw string) error {
	if raw == "direct" {
		return value.Parse(raw) // want `call to value\.Parse returns an untyped error`
	}
	if err := value.ParseIndirect(raw); err != nil { // want `call to value\.ParseIndirect returns an untyped error`
		return err
	}
	if err := value.Parse(raw); err != nil { // handled locally: clean
		s.path = "fallback"
	}
	if err := value.ParseTyped(raw); err != nil { // typed callee: clean
		return err
	}
	return nil
}

// worker lets the carrier's error escape but justifies it: the path is
// monitoring-only, so classification does not matter here.
func (s *scan) worker(raw string) error {
	//nodbvet:errtaxonomy-ok monitoring-only path, error string is logged not classified
	if err := value.Parse(raw); err != nil {
		return err
	}
	return nil
}

func bad() bool   { return false }
func worse() bool { return false }
