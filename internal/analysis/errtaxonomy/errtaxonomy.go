// Package errtaxonomy keeps the scan boundary typed: every error built on
// a scan path in internal/core and internal/rawfile must speak the
// internal/faults taxonomy, so callers can switch on errors.Is classes and
// the per-table on_error policies can act on them without parsing message
// strings.
//
// Flagged: bare errors.New anywhere in scope, and fmt.Errorf that does not
// verifiably wrap the faults package — i.e. its arguments contain no
// faults sentinel, faults constructor call or *faults.ScanError, or its
// format has no %w verb. Construction-time validation helpers that are not
// reachable from the scan-serving surface are out of scope.
package errtaxonomy

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"nodb/internal/analysis/nodbvet"
)

// Roots names, per package, the scan-path entry points. In rawfile the
// whole package is scan substrate, so every function is a root.
var Roots = map[string]map[string]bool{
	"core":    {"Next": true, "NextBatch": true, "DrainAgg": true, "splitter": true, "worker": true, "OpenScan": true},
	"rawfile": {"*": true},
}

// Analyzer is the errtaxonomy check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "errtaxonomy",
	Directive: "errtaxonomy-ok",
	Doc: "errors constructed on scan paths (core, rawfile) must be typed: use the faults package " +
		"constructors or wrap a faults sentinel with %w; bare errors.New/fmt.Errorf leaves callers " +
		"and on_error policies unable to classify the failure",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	roots, ok := Roots[pass.Pkg.Name()]
	if !ok {
		return nil
	}
	g := nodbvet.BuildCallGraph(pass)
	var reach map[*types.Func]bool
	if !roots["*"] {
		reach = g.ReachableFrom(roots)
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if reach != nil {
				obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
				if !ok || !reach[obj] {
					continue
				}
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *nodbvet.Pass, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleePath(pass, call) {
		case "errors.New":
			pass.Reportf(call.Pos(),
				"untyped errors.New on a scan path; construct a faults.ScanError (faults.Malformed, "+
					"faults.IO, ...) or wrap a faults sentinel so the error is errors.Is-classifiable, "+
					"or suppress with //nodbvet:errtaxonomy-ok <why>")
		case "fmt.Errorf":
			if wrapsFaults(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"fmt.Errorf on a scan path does not verifiably wrap the faults taxonomy; wrap a "+
					"faults sentinel with %%w, use a faults constructor, or suppress with "+
					"//nodbvet:errtaxonomy-ok <why>")
		}
		return true
	})
}

// calleePath renders a call's callee as "pkg.Func" for package-level
// functions of imported packages.
func calleePath(pass *nodbvet.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path() + "." + sel.Sel.Name
}

// wrapsFaults reports whether a fmt.Errorf call provably produces a
// faults-classified error: its format string contains %w and at least one
// argument mentions the faults package (a sentinel like faults.ErrIO, a
// constructor call, or a value of a faults type).
func wrapsFaults(pass *nodbvet.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	if !strings.Contains(constant.StringVal(tv.Value), "%w") {
		return false
	}
	for _, arg := range call.Args[1:] {
		if mentionsFaults(pass, arg) {
			return true
		}
	}
	return false
}

func mentionsFaults(pass *nodbvet.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return true
		}
		if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
			pkgName.Imported().Path() == "nodb/internal/faults" {
			found = true
		}
		// A value whose static type is declared in faults (e.g. a
		// *faults.ScanError variable) counts too.
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			if named, ok := derefNamed(obj.Type()); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "nodb/internal/faults" {
				found = true
			}
		}
		return true
	})
	return found
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
