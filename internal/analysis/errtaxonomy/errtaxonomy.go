// Package errtaxonomy keeps the scan boundary typed: every error built on
// a scan path in internal/core and internal/rawfile must speak the
// internal/faults taxonomy, so callers can switch on errors.Is classes and
// the per-table on_error policies can act on them without parsing message
// strings.
//
// Flagged: bare errors.New anywhere in scope, and fmt.Errorf that does not
// verifiably wrap the faults package — i.e. its arguments contain no
// faults sentinel, faults constructor call or *faults.ScanError, or its
// format has no %w verb. Construction-time validation helpers that are not
// reachable from the scan-serving surface are out of scope.
//
// The check is cross-package through the "errtaxonomy.untyped" fact: every
// module package (except faults itself) exports it for functions that
// build an untyped error AND let it flow to a return, and a scan-path
// function that returns such a carrier's error is flagged at the call
// site. A helper that builds an untyped error but handles it locally
// exports nothing — the taxonomy only cares about errors that escape.
package errtaxonomy

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"nodb/internal/analysis/nodbvet"
)

// UntypedFact marks a function that (transitively) returns an untyped
// error: one built by errors.New or a non-%w-wrapping fmt.Errorf.
const UntypedFact = "errtaxonomy.untyped"

// Roots names, per package, the scan-path entry points. In rawfile the
// whole package is scan substrate, so every function is a root.
var Roots = map[string]map[string]bool{
	"core":    {"Next": true, "NextBatch": true, "DrainAgg": true, "splitter": true, "worker": true, "OpenScan": true},
	"rawfile": {"*": true},
}

// Analyzer is the errtaxonomy check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "errtaxonomy",
	Directive: "errtaxonomy-ok",
	Doc: "errors constructed on scan paths (core, rawfile) must be typed: use the faults package " +
		"constructors or wrap a faults sentinel with %w; bare errors.New/fmt.Errorf leaves callers " +
		"and on_error policies unable to classify the failure",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	if path.Base(pass.Pkg.Path()) == "faults" {
		return nil // the taxonomy's home builds errors by design
	}
	g := nodbvet.BuildCallGraph(pass)
	roots, checked := Roots[pass.Pkg.Name()]
	var reach map[*types.Func]bool
	if checked && !roots["*"] {
		reach = g.ReachableFrom(roots)
	}

	if checked {
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if reach != nil {
					obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
					if !ok || !reach[obj] {
						continue
					}
				}
				checkFunc(pass, g, fn)
			}
		}
	}

	exportFacts(pass, g)
	return nil
}

func checkFunc(pass *nodbvet.Pass, g *nodbvet.CallGraph, fn *ast.FuncDecl) {
	flow := buildFlow(pass, fn.Body)
	type finding struct {
		pos token.Pos
		msg string
	}
	var found []finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch calleePath(pass, call) {
		case "errors.New":
			found = append(found, finding{call.Pos(),
				"untyped errors.New on a scan path; construct a faults.ScanError (faults.Malformed, " +
					"faults.IO, ...) or wrap a faults sentinel so the error is errors.Is-classifiable, " +
					"or suppress with //nodbvet:errtaxonomy-ok <why>"})
		case "fmt.Errorf":
			if wrapsFaults(pass, call) {
				return true
			}
			found = append(found, finding{call.Pos(),
				"fmt.Errorf on a scan path does not verifiably wrap the faults taxonomy; wrap a " +
					"faults sentinel with %w, use a faults constructor, or suppress with " +
					"//nodbvet:errtaxonomy-ok <why>"})
		default:
			// Imported untyped-error carrier whose result escapes through
			// this function's return: the taxonomy hole crosses the
			// package boundary right here.
			callee := calleeFunc(pass, call)
			if callee == nil {
				return true
			}
			if _, declared := g.Decl(callee); declared {
				return true // local constructions report at their own site
			}
			if pass.Deps.FuncHas(nodbvet.FuncID(callee), UntypedFact) && flow.flows(call) {
				found = append(found, finding{call.Pos(),
					"call to " + nodbvet.ShortName(callee) + " returns an untyped error " +
						"(errtaxonomy.untyped fact) that flows to this scan-path return — wrap it " +
						"with a faults constructor or %w around a faults sentinel, or suppress with " +
						"//nodbvet:errtaxonomy-ok <why>"})
			}
		}
		return true
	})
	sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
	for _, f := range found {
		pass.Reportf(f.pos, "%s", f.msg)
	}
}

// exportFacts publishes the errtaxonomy.untyped fact: a function taints if
// an unsuppressed untyped construction (or a call to a tainted/imported
// carrier) flows to one of its returns.
func exportFacts(pass *nodbvet.Pass, g *nodbvet.CallGraph) {
	flows := map[*types.Func]*flowInfo{}
	for fn, decl := range g.Decls() {
		flows[fn] = buildFlow(pass, decl.Body)
	}
	tainted := map[*types.Func]bool{}
	for fn, decl := range g.Decls() {
		flow := flows[fn]
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || tainted[fn] {
				return true
			}
			switch calleePath(pass, call) {
			case "errors.New":
			case "fmt.Errorf":
				if wrapsFaults(pass, call) {
					return true
				}
			default:
				return true
			}
			if flow.flows(call) && !pass.SuppressedAt(call.Pos()) {
				tainted[fn] = true
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn, decl := range g.Decls() {
			if tainted[fn] {
				continue
			}
			flow := flows[fn]
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || tainted[fn] {
					return true
				}
				callee := calleeFunc(pass, call)
				if callee == nil || !flow.flows(call) || pass.SuppressedAt(call.Pos()) {
					return true
				}
				carrier := tainted[callee]
				if _, declared := g.Decl(callee); !declared {
					carrier = pass.Deps.FuncHas(nodbvet.FuncID(callee), UntypedFact)
				}
				if carrier {
					tainted[fn] = true
					changed = true
				}
				return true
			})
		}
	}
	for fn := range tainted {
		pass.Out.AddFunc(nodbvet.FuncID(fn), UntypedFact)
	}
}

// flowInfo records, for one function body, which call results escape
// through a return: either the call sits inside a return statement, or its
// result is assigned to a variable that some return statement mentions.
// One assignment hop is tracked — enough for the `if err := f(); err !=
// nil { return err }` idiom that dominates the tree.
type flowInfo struct {
	direct     map[ast.Node]bool
	assignedTo map[ast.Node][]types.Object
	returned   map[types.Object]bool
}

func buildFlow(pass *nodbvet.Pass, body *ast.BlockStmt) *flowInfo {
	fi := &flowInfo{
		direct:     map[ast.Node]bool{},
		assignedTo: map[ast.Node][]types.Object{},
		returned:   map[types.Object]bool{},
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Only top-level result expressions count: `return err` and
			// `return f()` escape raw, while `return wrap(err)` hands the
			// value to a wrapper first — if the wrapper is untyped too, it
			// is flagged on its own.
			for _, res := range n.Results {
				switch r := res.(type) {
				case *ast.CallExpr:
					fi.direct[r] = true
				case *ast.Ident:
					if obj := pass.TypesInfo.ObjectOf(r); obj != nil && isErrorish(obj.Type()) {
						fi.returned[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// Only the error-typed targets matter: a multi-value call whose
			// non-error result is returned does not leak its error.
			var lhs []types.Object
			for _, l := range n.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isErrorish(obj.Type()) {
						lhs = append(lhs, obj)
					}
				}
			}
			if len(lhs) == 0 {
				return true
			}
			for _, r := range n.Rhs {
				ast.Inspect(r, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						fi.assignedTo[call] = append(fi.assignedTo[call], lhs...)
					}
					return true
				})
			}
		}
		return true
	})
	return fi
}

func (fi *flowInfo) flows(call ast.Node) bool {
	if fi.direct[call] {
		return true
	}
	for _, obj := range fi.assignedTo[call] {
		if fi.returned[obj] {
			return true
		}
	}
	return false
}

// isErrorish reports whether t is the error interface or a type
// implementing it.
func isErrorish(t types.Type) bool {
	iface, ok := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	return types.Implements(t, iface)
}

// calleeFunc resolves a call's callee to a *types.Func (package function
// or method), or nil.
func calleeFunc(pass *nodbvet.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// calleePath renders a call's callee as "pkg.Func" for package-level
// functions of imported packages.
func calleePath(pass *nodbvet.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path() + "." + sel.Sel.Name
}

// wrapsFaults reports whether a fmt.Errorf call provably produces a
// faults-classified error: its format string contains %w and at least one
// argument mentions the faults package (a sentinel like faults.ErrIO, a
// constructor call, or a value of a faults type).
func wrapsFaults(pass *nodbvet.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return false
	}
	if !strings.Contains(constant.StringVal(tv.Value), "%w") {
		return false
	}
	for _, arg := range call.Args[1:] {
		if mentionsFaults(pass, arg) {
			return true
		}
	}
	return false
}

func mentionsFaults(pass *nodbvet.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || found {
			return true
		}
		if pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
			pkgName.Imported().Path() == "nodb/internal/faults" {
			found = true
		}
		// A value whose static type is declared in faults (e.g. a
		// *faults.ScanError variable) counts too.
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			if named, ok := derefNamed(obj.Type()); ok && named.Obj().Pkg() != nil &&
				named.Obj().Pkg().Path() == "nodb/internal/faults" {
				found = true
			}
		}
		return true
	})
	return found
}

func derefNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}
