package errtaxonomy_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/errtaxonomy"
)

func TestErrtaxonomy(t *testing.T) {
	analysistest.Run(t, errtaxonomy.Analyzer, "testdata/core", "testdata/value")
}
