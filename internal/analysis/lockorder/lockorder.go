// Package lockorder builds the engine's mutex acquisition graph and flags
// the three hazards that matter for a scan engine: lock-ordering cycles
// (deadlock), channel operations while holding a lock (a blocked pipeline
// keeps the lock and stalls every other path into it), and leaf I/O while
// holding a lock (an os/syscall round trip turns a micro-critical-section
// into an unbounded one — the catalog freeze class).
//
// Locks are identified structurally as "(pkg.Type).field" for a
// sync.Mutex/RWMutex struct field (RLock counts as Lock: a reader still
// blocks writers) or "pkg.var" for a package-level mutex. Held-sets are
// tracked by a linear, branch-copying walk of each function body: Lock
// adds, Unlock removes, `defer Unlock` holds to the end of the function.
//
// The analysis is cross-package through three facts: "lockorder.acquires"
// (the lock IDs a function may take, transitively), "lockorder.io" (the
// function eventually performs os/syscall I/O) and the package-level
// "lockorder.edge" ("A->B": A is held while B is acquired somewhere in
// the package). Cycle detection runs over the union of local and imported
// edges, and reports at the local edge that closes the cycle.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nodb/internal/analysis/nodbvet"
)

// Fact names exported by this analyzer.
const (
	AcquiresFact = "lockorder.acquires"
	IOFact       = "lockorder.io"
	EdgeFact     = "lockorder.edge"
)

// Analyzer is the lockorder check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "lockorder",
	Directive: "lockorder-ok",
	Doc: "flags lock-ordering cycles over the engine's mutexes (DB.mu/planMu/pinMu, Table.mu, " +
		"adaptive-structure mutexes), channel operations while holding a lock, and leaf I/O " +
		"(os/syscall) inside a critical section; acquisition edges and I/O reach across packages " +
		"via lockorder.* facts",
	Run: run,
}

// osPure lists os functions that don't touch the filesystem or block:
// calling them under a lock is unremarkable.
var osPure = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
	"Getpid": true, "Getppid": true, "Getuid": true, "Geteuid": true,
	"Getgid": true, "Getegid": true,
	"IsNotExist": true, "IsExist": true, "IsPermission": true, "IsTimeout": true,
}

type edge struct{ from, to string }

type report struct {
	pos token.Pos
	msg string
}

type analysis struct {
	pass    *nodbvet.Pass
	graph   *nodbvet.CallGraph
	acq     map[*types.Func]map[string]bool // transitive lock IDs per local fn
	io      map[*types.Func]bool            // transitive I/O per local fn
	edges   map[edge]token.Pos              // local acquisition-order edges
	reports []report
}

func run(pass *nodbvet.Pass) error {
	a := &analysis{
		pass:  pass,
		graph: nodbvet.BuildCallGraph(pass),
		acq:   map[*types.Func]map[string]bool{},
		io:    map[*types.Func]bool{},
		edges: map[edge]token.Pos{},
	}
	a.summarize()
	for _, decl := range a.graph.Decls() {
		a.walkStmts(decl.Body.List, map[string]token.Pos{})
	}
	a.detectCycles()
	sort.Slice(a.reports, func(i, j int) bool { return a.reports[i].pos < a.reports[j].pos })
	for _, r := range a.reports {
		pass.Reportf(r.pos, "%s", r.msg)
	}
	a.exportFacts()
	return nil
}

// summarize computes, per declared function, the transitive set of lock
// IDs it may acquire and whether it may perform leaf I/O — seeded with
// direct lock calls, direct os/syscall calls and imported facts, then
// propagated to fixpoint over the package call graph.
func (a *analysis) summarize() {
	for fn, decl := range a.graph.Decls() {
		acquires := map[string]bool{}
		io := false
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, op, ok := a.lockOp(call); ok {
				if op == "acquire" {
					acquires[id] = true
				}
				return true
			}
			if callee := a.callee(call); callee != nil {
				if a.calleeIO(callee) {
					io = true
				}
				for _, l := range a.pass.Deps.FuncValues(nodbvet.FuncID(callee), AcquiresFact) {
					acquires[l] = true
				}
			}
			return true
		})
		a.acq[fn] = acquires
		a.io[fn] = io
	}
	for changed := true; changed; {
		changed = false
		for fn := range a.graph.Decls() {
			for _, site := range a.graph.Sites(fn) {
				if _, declared := a.graph.Decls()[site.Callee]; !declared {
					continue
				}
				if a.io[site.Callee] && !a.io[fn] {
					a.io[fn] = true
					changed = true
				}
				for l := range a.acq[site.Callee] {
					if !a.acq[fn][l] {
						a.acq[fn][l] = true
						changed = true
					}
				}
			}
		}
	}
}

// calleeIO reports whether calling fn may perform leaf I/O: it is an
// os/syscall function (minus the pure ones), or an imported function
// carrying the lockorder.io fact.
func (a *analysis) calleeIO(fn *types.Func) bool {
	if pkg := fn.Pkg(); pkg != nil {
		switch pkg.Path() {
		case "os":
			return !osPure[fn.Name()]
		case "syscall":
			return true
		}
	}
	return a.pass.Deps.FuncHas(nodbvet.FuncID(fn), IOFact)
}

// callee resolves a call's target to a *types.Func when possible.
func (a *analysis) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := a.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// lockOp classifies a call as a mutex acquire/release and names the lock.
func (a *analysis) lockOp(call *ast.CallExpr) (id, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	m, isFn := a.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch m.Name() {
	case "Lock", "RLock":
		op = "acquire"
	case "Unlock", "RUnlock":
		op = "release"
	default:
		return "", "", false
	}
	id = a.lockID(sel.X)
	if id == "" {
		return "", "", false
	}
	return id, op, true
}

// lockID names the mutex expression: a struct field as "(pkg.Type).field",
// a package-level var as "pkg.var". Locals and unresolvable shapes yield
// "" and are skipped — every shared mutex in the engine is one of the two.
func (a *analysis) lockID(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := a.pass.TypesInfo.Selections[x]; ok {
			t := sel.Recv()
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), x.Sel.Name)
			}
			return ""
		}
		// Package-qualified var: pkg.Mu.Lock().
		if v, ok := a.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := a.pass.TypesInfo.Uses[x].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

func heldList(held map[string]token.Pos) string {
	ids := make([]string, 0, len(held))
	for id := range held {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return strings.Join(ids, ", ")
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

// walkStmts tracks the held-set through a statement list. Branch bodies
// get a copy: a conditional Lock does not leak past its branch.
func (a *analysis) walkStmts(list []ast.Stmt, held map[string]token.Pos) {
	for _, s := range list {
		a.walkStmt(s, held)
	}
}

func (a *analysis) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		a.scanExpr(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			a.scanExpr(e, held)
		}
		for _, e := range s.Lhs {
			a.scanExpr(e, held)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			a.scanExpr(e, held)
		}
	case *ast.IncDecStmt:
		a.scanExpr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			a.reportf(s.Arrow, "channel send while holding %s; a blocked pipeline would hold the lock "+
				"— release it first, or suppress with //nodbvet:lockorder-ok <why>", heldList(held))
		}
		a.scanExpr(s.Chan, held)
		a.scanExpr(s.Value, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the lock held to function end: no-op for
		// the walk. Other deferred work runs before that unlock (LIFO), so
		// it executes under whatever is held here.
		if _, op, ok := a.lockOp(s.Call); ok && op == "release" {
			return
		}
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			for _, arg := range s.Call.Args {
				a.scanExpr(arg, held)
			}
			a.walkStmts(lit.Body.List, copyHeld(held))
			return
		}
		a.scanExpr(s.Call, held)
	case *ast.GoStmt:
		// The goroutine runs on its own stack: it does not inherit the
		// held-set (chanleak and panicroute police its body).
		for _, arg := range s.Call.Args {
			a.scanExpr(arg, held)
		}
		if lit, isLit := s.Call.Fun.(*ast.FuncLit); isLit {
			a.walkStmts(lit.Body.List, map[string]token.Pos{})
		}
	case *ast.IfStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, held)
		}
		a.scanExpr(s.Cond, held)
		a.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			a.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			a.scanExpr(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			a.walkStmt(s.Post, inner)
		}
		a.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, ok := a.pass.TypesInfo.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					a.reportf(s.For, "range over channel while holding %s; a stalled producer would hold "+
						"the lock — release it first, or suppress with //nodbvet:lockorder-ok <why>", heldList(held))
				}
			}
		}
		a.scanExpr(s.X, held)
		a.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			a.scanExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				a.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			a.walkStmt(s.Init, held)
		}
		for _, c := range s.Body.List {
			if cc, isCase := c.(*ast.CaseClause); isCase {
				a.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 {
			a.reportf(s.Select, "select while holding %s; every communication case blocks with the lock "+
				"held — release it first, or suppress with //nodbvet:lockorder-ok <why>", heldList(held))
		}
		for _, c := range s.Body.List {
			if cc, isComm := c.(*ast.CommClause); isComm {
				a.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.BlockStmt:
		a.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		a.walkStmt(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, isGen := s.Decl.(*ast.GenDecl); isGen {
			for _, spec := range gd.Specs {
				if vs, isVal := spec.(*ast.ValueSpec); isVal {
					for _, e := range vs.Values {
						a.scanExpr(e, held)
					}
				}
			}
		}
	}
}

// scanExpr classifies the calls and channel receives inside one
// expression against the current held-set, updating it for lock
// operations. Function literals are walked as inline code (they run on
// this goroutine under the same locks, e.g. a sort.Slice comparator).
func (a *analysis) scanExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.walkStmts(n.Body.List, copyHeld(held))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && len(held) > 0 {
				a.reportf(n.OpPos, "channel receive while holding %s; a stalled sender would hold the "+
					"lock — release it first, or suppress with //nodbvet:lockorder-ok <why>", heldList(held))
			}
		case *ast.CallExpr:
			a.scanCall(n, held)
		}
		return true
	})
}

func (a *analysis) scanCall(call *ast.CallExpr, held map[string]token.Pos) {
	if id, op, ok := a.lockOp(call); ok {
		switch op {
		case "acquire":
			if _, already := held[id]; already {
				a.reportf(call.Pos(), "acquires %s while already holding it; sync mutexes are not "+
					"reentrant — this self-deadlocks", id)
				return
			}
			for from := range held {
				a.addEdge(from, id, call.Pos())
			}
			held[id] = call.Pos()
		case "release":
			delete(held, id)
		}
		return
	}
	callee := a.callee(call)
	if callee == nil || len(held) == 0 {
		return
	}
	if a.calleeIO(callee) || a.io[callee] {
		a.reportf(call.Pos(), "call to %s performs leaf I/O while holding %s; an os/syscall round "+
			"trip makes the critical section unbounded — release the lock first, or suppress with "+
			"//nodbvet:lockorder-ok <why>", nodbvet.ShortName(callee), heldList(held))
	}
	var acquired map[string]bool
	if _, declared := a.graph.Decls()[callee]; declared {
		acquired = a.acq[callee]
	} else {
		acquired = map[string]bool{}
		for _, l := range a.pass.Deps.FuncValues(nodbvet.FuncID(callee), AcquiresFact) {
			acquired[l] = true
		}
	}
	for to := range acquired {
		for from := range held {
			a.addEdge(from, to, call.Pos())
		}
	}
}

// addEdge records an acquisition-order edge, keeping the earliest
// position so diagnostics stay deterministic across map iteration order.
func (a *analysis) addEdge(from, to string, pos token.Pos) {
	if cur, seen := a.edges[edge{from, to}]; !seen || pos < cur {
		a.edges[edge{from, to}] = pos
	}
}

func (a *analysis) reportf(pos token.Pos, format string, args ...any) {
	a.reports = append(a.reports, report{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// detectCycles reports every local acquisition edge that closes a cycle in
// the combined (local + imported) edge graph: the to-lock reaches the
// from-lock again through some chain of held-while-acquired edges.
func (a *analysis) detectCycles() {
	succ := map[string]map[string]bool{}
	add := func(from, to string) {
		if succ[from] == nil {
			succ[from] = map[string]bool{}
		}
		succ[from][to] = true
	}
	for e := range a.edges {
		add(e.from, e.to)
	}
	for _, v := range a.pass.Deps.PkgValues(EdgeFact) {
		if from, to, ok := strings.Cut(v, "->"); ok {
			add(from, to)
		}
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == to {
				return true
			}
			if seen[cur] {
				continue
			}
			seen[cur] = true
			for next := range succ[cur] {
				stack = append(stack, next)
			}
		}
		return false
	}
	for e, pos := range a.edges {
		if reaches(e.to, e.from) {
			a.reportf(pos, "acquiring %s while holding %s closes a lock-ordering cycle (%s is also "+
				"held, possibly in another package, while %s is acquired); pick one global order — "+
				"or suppress with //nodbvet:lockorder-ok <why>", e.to, e.from, e.to, e.from)
		}
	}
}

// exportFacts publishes the per-function summaries and the package's
// acquisition edges. Summaries are information, not violations, so they
// export unsuppressed: a justified finding silences the diagnostic at the
// holding site, while callers elsewhere still deserve to know the callee
// locks or does I/O.
func (a *analysis) exportFacts() {
	for fn := range a.graph.Decls() {
		id := nodbvet.FuncID(fn)
		if len(a.acq[fn]) > 0 {
			locks := make([]string, 0, len(a.acq[fn]))
			for l := range a.acq[fn] {
				locks = append(locks, l)
			}
			sort.Strings(locks)
			a.pass.Out.AddFunc(id, AcquiresFact, locks...)
		}
		if a.io[fn] {
			a.pass.Out.AddFunc(id, IOFact)
		}
	}
	for e := range a.edges {
		a.pass.Out.AddPkg(a.pass.Pkg.Path(), EdgeFact, e.from+"->"+e.to)
	}
}
