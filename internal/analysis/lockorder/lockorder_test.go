package lockorder_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/lockorder"
)

func TestLockorder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "testdata/core", "testdata/storage")
}
