// Fixture under test for the lockorder analyzer. Dep: storage (exports
// lockorder.io / lockorder.acquires facts and an A->B edge).
package core

import (
	"os"
	"sync"

	"storage"
)

type T struct {
	mu    sync.Mutex
	state int
}

type T2 struct {
	a, b sync.Mutex
}

// clean critical section: compute only.
func (t *T) Bump() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.state++
}

// unlockFirst releases before the I/O: clean.
func (t *T) unlockFirst(path string) {
	t.mu.Lock()
	t.state++
	t.mu.Unlock()
	os.Remove(path)
}

// directIO holds the lock across a leaf syscall.
func (t *T) directIO(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	os.Remove(path) // want `call to os\.Remove performs leaf I/O while holding \(core\.T\)\.mu`
}

// factIO reaches the I/O only through the storage package's fact.
func (t *T) factIO(path string, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	storage.Flush(path, data) // want `call to storage\.Flush performs leaf I/O while holding \(core\.T\)\.mu`
}

// helperIO reaches the I/O through a same-package helper.
func (t *T) helperIO(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocal(path) // want `call to \(\*core\.T\)\.flushLocal performs leaf I/O while holding \(core\.T\)\.mu`
}

func (t *T) flushLocal(path string) {
	os.WriteFile(path, nil, 0o644)
}

// suppressedIO carries a justification: settled.
func (t *T) suppressedIO(path string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//nodbvet:lockorder-ok fixture: shutdown path, no scan can hold this lock concurrently
	os.Remove(path)
}

// channel operations under a lock.
func (t *T) chanOps(ch chan int, done chan struct{}) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ch <- 1 // want `channel send while holding \(core\.T\)\.mu`
	<-ch    // want `channel receive while holding \(core\.T\)\.mu`
	select { // want `select while holding \(core\.T\)\.mu`
	case <-done:
	default:
	}
}

// rangeChan drains a channel under the lock.
func (t *T) rangeChan(ch chan int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for range ch { // want `range over channel while holding \(core\.T\)\.mu`
		t.state++
	}
}

// branchSend: the conditional lock is tracked into the branch.
func (t *T) branchSend(ch chan int, hot bool) {
	if hot {
		t.mu.Lock()
		ch <- 1 // want `channel send while holding \(core\.T\)\.mu`
		t.mu.Unlock()
	}
	ch <- 2
}

// doubleLock self-deadlocks.
func (t *T) doubleLock() {
	t.mu.Lock()
	t.mu.Lock() // want `acquires \(core\.T\)\.mu while already holding it`
	t.mu.Unlock()
	t.mu.Unlock()
}

// lockAB and lockBA together close an intra-package ordering cycle; each
// closing edge is reported.
func (t *T2) lockAB() {
	t.a.Lock()
	defer t.a.Unlock()
	t.b.Lock() // want `acquiring \(core\.T2\)\.b while holding \(core\.T2\)\.a closes a lock-ordering cycle`
	t.b.Unlock()
}

func (t *T2) lockBA() {
	t.b.Lock()
	defer t.b.Unlock()
	t.a.Lock() // want `acquiring \(core\.T2\)\.a while holding \(core\.T2\)\.b closes a lock-ordering cycle`
	t.a.Unlock()
}

// crossCycle closes a cycle against storage's exported A->B edge by
// taking B before A here.
func crossCycle(p *storage.Pair) {
	p.B.Lock()
	defer p.B.Unlock()
	p.A.Lock() // want `acquiring \(storage\.Pair\)\.A while holding \(storage\.Pair\)\.B closes a lock-ordering cycle`
	p.A.Unlock()
}

// nestedOK: holding our mutex while taking the store's is an edge, not a
// cycle — clean.
func (t *T) nestedOK(s *storage.Store) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s.WithLock(func() {})
}
