// Dep fixture for lockorder: exports lockorder.io (Flush reaches
// os.WriteFile), lockorder.acquires (WithLock takes the Store mutex) and
// a package-level lockorder.edge (lockPair holds A while taking B).
package storage

import (
	"os"
	"sync"
)

type Store struct {
	mu sync.Mutex
}

// Flush performs leaf I/O; callers holding a lock are flagged in their
// own package via the exported fact.
func Flush(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

// WithLock runs f under the store mutex; the acquires fact tells callers
// already holding a lock that this edge exists.
func (s *Store) WithLock(f func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f()
}

// Pair carries two exported mutexes so the fixture under test can close a
// cross-package ordering cycle against lockPair's A-then-B edge.
type Pair struct {
	A, B sync.Mutex
}

func (p *Pair) lockPair() {
	p.A.Lock()
	defer p.A.Unlock()
	p.B.Lock()
	p.B.Unlock()
}
