// Package analysis assembles the nodbvet analyzer suite. cmd/nodbvet runs
// every analyzer listed here; adding an invariant check means adding it to
// Suite (and documenting it in CONTRIBUTING.md).
package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"nodb/internal/analysis/chanleak"
	"nodb/internal/analysis/closeleak"
	"nodb/internal/analysis/commitscope"
	"nodb/internal/analysis/counterflow"
	"nodb/internal/analysis/ctxloop"
	"nodb/internal/analysis/errtaxonomy"
	"nodb/internal/analysis/floatdet"
	"nodb/internal/analysis/hotalloc"
	"nodb/internal/analysis/lockorder"
	"nodb/internal/analysis/mapiter"
	"nodb/internal/analysis/mustdefer"
	"nodb/internal/analysis/nilguard"
	"nodb/internal/analysis/nodbvet"
	"nodb/internal/analysis/panicroute"
)

// Suite is the full nodbvet analyzer set, in reporting order.
var Suite = []*nodbvet.Analyzer{
	mapiter.Analyzer,
	panicroute.Analyzer,
	errtaxonomy.Analyzer,
	hotalloc.Analyzer,
	ctxloop.Analyzer,
	commitscope.Analyzer,
	lockorder.Analyzer,
	chanleak.Analyzer,
	floatdet.Analyzer,
	counterflow.Analyzer,
	closeleak.Analyzer,
	mustdefer.Analyzer,
	nilguard.Analyzer,
}

// RunSuite executes every analyzer in Suite over one type-checked package
// and returns the suppression-filtered findings plus the package's own
// exported facts. deps holds the merged facts of the package's (transitive)
// dependencies; nil means none.
func RunSuite(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, deps *nodbvet.FactSet) ([]nodbvet.Diagnostic, *nodbvet.FactSet, error) {
	return nodbvet.RunAnalyzers(fset, files, pkg, info, Suite, deps)
}
