// Package commitscope statically enforces the dirty-chunk determinism
// rule: the adaptive structures — positional map, raw cache, statistics
// collector — may only be mutated from the ordered-commit scope
// (Scan.commit and its helpers) or a table refresh (Table.Refresh /
// ShardedTable.Refresh). Anywhere else, a Populate/Put/ObserveBatch/
// SetRowCount call races the commit order and breaks the
// byte-identical-at-any-parallelism contract the differential tests pin.
//
// The check is cross-package: a function that (transitively) mutates an
// adaptive structure exports a "commitscope.mutates" fact, so a caller in
// another package is flagged even though the mutation is out of sight.
// Sanctioned scope is computed per package as everything reachable from a
// function named commit or Refresh; the packages defining the structures
// (posmap, rawcache, stats) are exempt — mutation is their job.
package commitscope

import (
	"go/types"
	"path"
	"sort"

	"nodb/internal/analysis/nodbvet"
)

// MutatesFact marks a function that (transitively) mutates an adaptive
// structure outside commit scope.
const MutatesFact = "commitscope.mutates"

// Roots are the bare names whose reachable set forms the sanctioned
// mutation scope in every package.
var Roots = map[string]bool{"commit": true, "Refresh": true}

// Packages names the packages where violations are reported: the ones that
// own scan machinery and must respect commit ordering. Lifecycle surfaces
// (the nodb root's Load/Register, drivers, examples) legitimately build
// adaptive structures outside any scan, so facts still flow through them
// but no diagnostics fire there.
var Packages = map[string]bool{"core": true, "engine": true, "planner": true}

// mutators maps a defining package's base name to the mutating methods.
// Matching by base name keeps the analyzer honest on both the real tree
// (nodb/internal/posmap) and fixtures (a local "posmap" stand-in).
var mutators = map[string]map[string]bool{
	"posmap":   {"Populate": true},
	"rawcache": {"Put": true},
	"stats":    {"ObserveBatch": true, "SetRowCount": true},
}

// Analyzer is the commitscope check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "commitscope",
	Directive: "commitscope-ok",
	Doc: "adaptive structures (posmap/rawcache/stats) may only be mutated from ordered-commit scope " +
		"(Scan.commit, Table.Refresh); a Populate/Put/ObserveBatch/SetRowCount call reachable from " +
		"anywhere else races the commit order and breaks byte-identical-at-any-parallelism",
	Run: run,
}

func isMutator(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	return mutators[path.Base(pkg.Path())][fn.Name()]
}

func run(pass *nodbvet.Pass) error {
	if _, defining := mutators[path.Base(pass.Pkg.Path())]; defining {
		return nil
	}
	g := nodbvet.BuildCallGraph(pass)
	sanctioned := g.ReachableFrom(Roots)

	// A site is "mutating" when its callee is a structure mutator or a
	// fact-carrying function from a dependency. Suppressed sites are
	// settled: they neither report nor propagate.
	mutating := func(site nodbvet.CallSite) bool {
		if pass.SuppressedAt(site.Pos) {
			return false
		}
		return isMutator(site.Callee) || pass.Deps.FuncHas(nodbvet.FuncID(site.Callee), MutatesFact)
	}

	var flagged []nodbvet.CallSite
	if Packages[pass.Pkg.Name()] {
		for fn := range g.Decls() {
			if sanctioned[fn] {
				continue
			}
			for _, site := range g.Sites(fn) {
				if mutating(site) {
					flagged = append(flagged, site)
				}
			}
		}
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].Pos < flagged[j].Pos })
	for _, site := range flagged {
		what := "mutates an adaptive structure"
		if isMutator(site.Callee) {
			what = "mutates the " + path.Base(site.Callee.Pkg().Path()) + " adaptive structure"
		}
		pass.Reportf(site.Pos,
			"call to %s %s outside commit scope; adaptive structures may only change under "+
				"Scan.commit/Table.Refresh ordering — route the mutation through the commit path "+
				"or suppress with //nodbvet:commitscope-ok <why>",
			nodbvet.ShortName(site.Callee), what)
	}

	// Export the taint so dependents see through this package: any
	// function outside the sanctioned scope that reaches an unsuppressed
	// mutating site carries the fact.
	tainted := g.Transitive(func(site nodbvet.CallSite) bool {
		if fn := enclosing(g, site); fn != nil && sanctioned[fn] {
			return false
		}
		return mutating(site)
	})
	for fn := range tainted {
		if !sanctioned[fn] {
			pass.Out.AddFunc(nodbvet.FuncID(fn), MutatesFact)
		}
	}
	return nil
}

// enclosing finds the declared function whose body contains the site.
func enclosing(g *nodbvet.CallGraph, site nodbvet.CallSite) *types.Func {
	for fn, decl := range g.Decls() {
		if decl.Body != nil && decl.Body.Pos() <= site.Pos && site.Pos <= decl.Body.End() {
			return fn
		}
	}
	return nil
}

