// Fixture under test for the commitscope analyzer: package core, so
// commit/Refresh root the sanctioned scope. Deps: posmap (the structure),
// adaptive (a fact-carrying intermediary).
package core

import (
	"adaptive"
	"posmap"
)

type scan struct {
	pm *posmap.Map
}

type table struct {
	pm *posmap.Map
}

// commit is the sanctioned root: direct mutation is fine.
func (s *scan) commit(pos []uint32) {
	s.pm.Populate(0, pos)
	s.learn(pos)
}

// learn is reachable from commit, so its mutation is sanctioned too.
func (s *scan) learn(pos []uint32) {
	s.pm.Populate(1, pos)
}

// Refresh may call a fact-carrying helper: still sanctioned scope.
func (t *table) Refresh(pos []uint32) {
	adaptive.WarmFromSidecar(t.pm, pos)
}

// prefetch is NOT commit-reachable: a direct mutation is flagged.
func (t *table) prefetch(pos []uint32) {
	t.pm.Populate(2, pos) // want `call to \(\*posmap\.Map\)\.Populate mutates the posmap adaptive structure outside commit scope`
}

// warmup reaches the mutation only through the adaptive package; the
// imported fact makes the cross-package call visible.
func (t *table) warmup(pos []uint32) {
	adaptive.WarmFromSidecar(t.pm, pos) // want `call to adaptive\.WarmFromSidecar mutates an adaptive structure outside commit scope`
}

// warmupIndirect consumes a transitively tainted helper.
func (t *table) warmupIndirect() {
	adaptive.WarmIndirect(t.pm) // want `call to adaptive\.WarmIndirect mutates an adaptive structure outside commit scope`
}

// recover- and suppression-style escapes: Rebuild's mutation was settled
// with a justification in its own package, so no fact arrived and the
// call is clean.
func (t *table) recoverTable(pos []uint32) {
	adaptive.Rebuild(t.pm, pos)
}

// resetCounts carries its own justified suppression.
func (t *table) resetCounts(pos []uint32) {
	//nodbvet:commitscope-ok fixture: policy change discards structures under the table lock
	t.pm.Populate(3, pos)
}
