// Stand-in for the real positional map: the analyzer matches mutators by
// package base name + method name, so this fixture package exercises the
// same code paths as nodb/internal/posmap. Internal mutation (this
// package IS the structure) is exempt by construction.
package posmap

type Map struct {
	chunks map[int][]uint32
}

func New() *Map { return &Map{chunks: map[int][]uint32{}} }

// Populate is the mutator the analyzer polices.
func (m *Map) Populate(chunkID int, pos []uint32) {
	m.chunks[chunkID] = pos
}

// compact mutates internally; the defining package is exempt, so no
// finding here even though compact is not commit-reachable.
func (m *Map) compact() {
	for id, pos := range m.chunks {
		if len(pos) == 0 {
			delete(m.chunks, id)
		}
	}
}
