// Intermediary package: it mutates the posmap on behalf of callers, so
// the fact machinery must taint its helpers and carry the taint across
// the package boundary to the fixture under test.
package adaptive

import "posmap"

// WarmFromSidecar mutates the map outside any commit scope; the analyzer
// exports a commitscope.mutates fact for it (the in-package finding is
// the dep loader's to discard — the fixture under test asserts the
// cross-package consequence).
func WarmFromSidecar(m *posmap.Map, pos []uint32) {
	m.Populate(0, pos)
}

// warmIndirect shows transitive taint: it only calls WarmFromSidecar,
// and still carries the fact.
func WarmIndirect(m *posmap.Map) {
	WarmFromSidecar(m, nil)
}

// Rebuild's mutation is suppressed with a justification, so the finding
// is settled here and no fact propagates: callers of Rebuild stay clean.
func Rebuild(m *posmap.Map, pos []uint32) {
	//nodbvet:commitscope-ok fixture: rebuild runs under an exclusive table lock during recovery
	m.Populate(1, pos)
}
