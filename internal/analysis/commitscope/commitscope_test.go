package commitscope_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/commitscope"
)

func TestCommitscope(t *testing.T) {
	analysistest.Run(t, commitscope.Analyzer, "testdata/core",
		"testdata/posmap", "testdata/adaptive")
}
