// Package loadpkg parses and type-checks a directory of Go source for the
// nodbvet analyzers, resolving imports through the go command's build
// cache (`go list -export`). It is what lets analyzer fixtures and ad-hoc
// loads type-check against the real standard library and real engine
// packages (e.g. nodb/internal/faults) without any dependency on
// golang.org/x/tools.
package loadpkg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// exportCache memoizes import path -> export data file across loads (the
// go command is invoked at most once per path per process).
var exportCache sync.Map // string -> string

// exportFile resolves an import path to its export data file by asking the
// go command, building the package if the cache is cold.
func exportFile(path string) (string, error) {
	if f, ok := exportCache.Load(path); ok {
		return f.(string), nil
	}
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("loadpkg: go list -export %s: %v: %s", path, err, errb.String())
	}
	f := strings.TrimSpace(out.String())
	if f == "" {
		return "", fmt.Errorf("loadpkg: no export data for %q", path)
	}
	exportCache.Store(path, f)
	return f, nil
}

// Prefetch warms the export cache for every package matching the patterns
// and their dependencies with a single go list invocation, instead of one
// per import path on first use. A full-tree analysis run (the
// BenchmarkNodbvetSuite pre-commit path) drops from dozens of go list
// round trips to one.
func Prefetch(patterns ...string) error {
	args := append([]string{"list", "-export", "-deps", "-f", "{{.ImportPath}}\t{{.Export}}", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("loadpkg: go list -export -deps: %v: %s", err, errb.String())
	}
	for _, line := range strings.Split(out.String(), "\n") {
		path, export, ok := strings.Cut(strings.TrimSpace(line), "\t")
		if !ok || export == "" {
			continue
		}
		exportCache.Store(path, export)
	}
	return nil
}

// NewImporter returns a types importer backed by the go build cache.
func NewImporter(fset *token.FileSet) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// NewInfo returns a types.Info with every map the analyzers use filled in.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Dir parses and type-checks the non-test .go files of one directory as a
// single package.
func Dir(dir string) (*Package, error) {
	pkgs, err := Chain(dir)
	if err != nil {
		return nil, err
	}
	return pkgs[0], nil
}

// chainImporter resolves imports first against the packages loaded earlier
// in the same Chain call (keyed by their package name, which doubles as
// the fixture import path), then against the go build cache. It is what
// lets a fact-propagation fixture split across directories — a "posmap"
// stand-in, an intermediary, the package under test — type-check as a
// miniature multi-package build graph.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.ImporterFrom
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

func (c chainImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.ImportFrom(path, dir, mode)
}

// Chain parses and type-checks several directories as one dependency
// chain, in order: each directory's package may import any earlier one by
// its package name. All packages share a FileSet, so positions and type
// identities line up across the chain. Returns one Package per directory,
// in argument order.
func Chain(dirs ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	imp := chainImporter{local: map[string]*types.Package{}, fallback: NewImporter(fset)}
	var out []*Package
	for _, dir := range dirs {
		ents, err := os.ReadDir(dir)
		if err != nil {
			return nil, err
		}
		var names []string
		for _, e := range ents {
			if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
				names = append(names, n)
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			return nil, fmt.Errorf("loadpkg: no Go files in %s", dir)
		}
		var files []*ast.File
		for _, n := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{
			Importer: imp,
			Sizes:    types.SizesFor("gc", runtime.GOARCH),
		}
		pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loadpkg: type-check %s: %w", dir, err)
		}
		imp.local[pkg.Path()] = pkg
		out = append(out, &Package{Fset: fset, Files: files, Types: pkg, Info: info})
	}
	return out, nil
}
