// Package loadpkg parses and type-checks a directory of Go source for the
// nodbvet analyzers, resolving imports through the go command's build
// cache (`go list -export`). It is what lets analyzer fixtures and ad-hoc
// loads type-check against the real standard library and real engine
// packages (e.g. nodb/internal/faults) without any dependency on
// golang.org/x/tools.
package loadpkg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// exportCache memoizes import path -> export data file across loads (the
// go command is invoked at most once per path per process).
var exportCache sync.Map // string -> string

// exportFile resolves an import path to its export data file by asking the
// go command, building the package if the cache is cold.
func exportFile(path string) (string, error) {
	if f, ok := exportCache.Load(path); ok {
		return f.(string), nil
	}
	cmd := exec.Command("go", "list", "-export", "-f", "{{.Export}}", "--", path)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("loadpkg: go list -export %s: %v: %s", path, err, errb.String())
	}
	f := strings.TrimSpace(out.String())
	if f == "" {
		return "", fmt.Errorf("loadpkg: no export data for %q", path)
	}
	exportCache.Store(path, f)
	return f, nil
}

// NewImporter returns a types importer backed by the go build cache.
func NewImporter(fset *token.FileSet) types.ImporterFrom {
	lookup := func(path string) (io.ReadCloser, error) {
		f, err := exportFile(path)
		if err != nil {
			return nil, err
		}
		return os.Open(f)
	}
	return importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom)
}

// NewInfo returns a types.Info with every map the analyzers use filled in.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Dir parses and type-checks the non-test .go files of one directory as a
// single package.
func Dir(dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if n := e.Name(); strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("loadpkg: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := NewInfo()
	conf := types.Config{
		Importer: NewImporter(fset),
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loadpkg: type-check %s: %w", dir, err)
	}
	return &Package{Fset: fset, Files: files, Types: pkg, Info: info}, nil
}
