// Dep fixture for closeleak: constructors of a closeable type. OpenHandle,
// OpenWrapped (transitively) and NewPool.Acquire export the
// closeleak.opens fact; Registry.Current hands out a borrowed handle and
// must not.
package res

import "errors"

// Handle is the closeable resource.
type Handle struct{ open bool }

// Close releases the handle.
func (h *Handle) Close() error { h.open = false; return nil }

// Ping is a benign method: calling it does not affect ownership.
func (h *Handle) Ping() {}

// ErrBusy is returned by failing constructors.
var ErrBusy = errors.New("busy")

// OpenHandle is the direct constructor: exports closeleak.opens.
func OpenHandle() (*Handle, error) {
	return &Handle{open: true}, nil
}

// OpenWrapped wraps OpenHandle without closing: also an opener.
func OpenWrapped() (*Handle, error) {
	h, err := OpenHandle()
	if err != nil {
		return nil, err
	}
	return h, nil
}

// Pool vends handles.
type Pool struct{}

// NewPool builds a pool (no Close on Pool: not itself tracked).
func NewPool() *Pool { return &Pool{} }

// Acquire is a method constructor: exports closeleak.opens.
func (p *Pool) Acquire() (*Handle, error) {
	return &Handle{open: true}, nil
}

// Registry holds a long-lived handle.
type Registry struct{ h *Handle }

// Adopt stores the handle: ownership transfers to the registry.
func (r *Registry) Adopt(h *Handle) { r.h = h }

// Current returns the registry's borrowed handle: callers do not own it,
// so this must NOT export closeleak.opens.
func (r *Registry) Current() *Handle { return r.h }
