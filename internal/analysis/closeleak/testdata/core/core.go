// Consumer fixture for closeleak: acquisitions from the res package (its
// constructors carry the closeleak.opens fact) and from a same-package
// constructor, across the path shapes that matter — early-error returns,
// branches, loops, defer, stores and hand-offs.
package core

import "res"

func bad() bool { return false }

// LeakEarlyReturn is the canonical bug: the error check passes, then a
// second early return skips the Close.
func LeakEarlyReturn() error {
	h, err := res.OpenHandle() // want `not closed on the path exiting at line`
	if err != nil {
		return err
	}
	if bad() {
		return res.ErrBusy // leaks h
	}
	return h.Close()
}

// LeakNoCloseAtAll never closes.
func LeakNoCloseAtAll() error {
	h, err := res.OpenHandle() // want `not closed on the path exiting at line`
	if err != nil {
		return err
	}
	h.Ping()
	return nil
}

// LeakDiscarded drops the handle on the floor at the call itself.
func LeakDiscarded() {
	res.OpenHandle() // want `discarded without Close`
}

// LeakBlankBound binds the closeable result to the blank identifier.
func LeakBlankBound() error {
	_, err := res.OpenHandle() // want `discarded without Close`
	return err
}

// LeakFromMethodConstructor: method constructors carry the fact too.
func LeakFromMethodConstructor(p *res.Pool) error {
	h, err := p.Acquire() // want `not closed on the path exiting at line`
	if err != nil {
		return err
	}
	if bad() {
		return res.ErrBusy // leaks h
	}
	h.Close()
	return nil
}

// LeakBreakOutOfLoop: the break path skips the per-iteration close.
func LeakBreakOutOfLoop(n int) error {
	for i := 0; i < n; i++ {
		h, err := res.OpenHandle() // want `not closed on the path exiting at line`
		if err != nil {
			return err
		}
		if bad() {
			break // leaks this iteration's h
		}
		h.Close()
	}
	return nil
}

// CleanDeferred closes via defer registered right after the error check:
// every later path is covered.
func CleanDeferred() error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	defer h.Close()
	if bad() {
		return res.ErrBusy
	}
	return nil
}

// CleanDeferredClosure: the deferred closure closes; capture for closing
// is not an escape.
func CleanDeferredClosure() error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	defer func() { _ = h.Close() }()
	return nil
}

// CleanReturned transfers ownership to the caller (and is thereby itself
// an opener).
func CleanReturned() (*res.Handle, error) {
	h, err := res.OpenHandle()
	if err != nil {
		return nil, err
	}
	return h, nil
}

// CleanFieldStored escapes to a struct field: the holder owns it now.
type holder struct{ h *res.Handle }

func (x *holder) CleanFieldStored() error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	x.h = h
	return nil
}

// CleanTransferred hands the handle to another owner.
func CleanTransferred(r *res.Registry) error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	r.Adopt(h)
	return nil
}

// CleanClosedOnBothBranches closes on the error path and the happy path.
func CleanClosedOnBothBranches() error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	if bad() {
		h.Close()
		return res.ErrBusy
	}
	return h.Close()
}

// CleanNilChecked: the nil branch has nothing to close.
func CleanNilChecked() error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	if h == nil {
		return nil
	}
	return h.Close()
}

// CleanBorrowed uses a handle it does not own: Registry.Current carries
// no opens fact, so nothing is tracked.
func CleanBorrowed(r *res.Registry) {
	h := r.Current()
	h.Ping()
}

// CleanPanicPath: panic edges are exempt (defer is the only cleanup that
// runs there, and the happy path closes).
func CleanPanicPath() error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	if bad() {
		panic("invariant violated")
	}
	return h.Close()
}

// CleanSentToOwner: sending on a channel hands the resource off.
func CleanSentToOwner(ch chan *res.Handle) error {
	h, err := res.OpenHandle()
	if err != nil {
		return err
	}
	ch <- h
	return nil
}

// localRes is a same-package closeable with a same-package constructor:
// the opener fixpoint must recognize it without any imported fact.
type localRes struct{ on bool }

func (l *localRes) Release() { l.on = false }

func newLocalRes() *localRes { return &localRes{on: true} }

// LeakLocalConstructor: same-package constructor, early return leaks.
func LeakLocalConstructor() error {
	l := newLocalRes() // want `not closed on the path exiting at line`
	if bad() {
		return res.ErrBusy // leaks l
	}
	l.Release()
	return nil
}

// SuppressedLeak documents an intentional hand-off the analyzer cannot
// see; the justified directive silences it.
func SuppressedLeak() error {
	h, err := res.OpenHandle() //nodbvet:closeleak-ok fd ownership recorded in the process-global handle table
	if err != nil {
		return err
	}
	_ = h
	return nil
}
