// Package closeleak is the path-sensitive resource-leak check: every value
// obtained from a constructor of a closeable type (rawfile.Open,
// Reader.View, core.NewScan, sched.Pool.NewQueue, the shard/pipeline
// constructors, os.Open...) must reach Close/Release, be returned, or be
// stored/handed off on *every* control-flow path out of the acquiring
// function — including the early-error returns and cancel branches the
// AST-level analyzers cannot see. A warm scan that leaks one fd per
// injected fault is exactly the bug class PR 6's fault suite provokes; this
// analyzer makes it a compile-time finding.
//
// Constructors are recognized cross-package through the "closeleak.opens"
// fact: a function (in any module package) that returns a freshly created
// closeable value exports it, computed to fixpoint within each package so
// wrappers of wrappers count. Consumers track each open site through the
// nodbvet CFG with a forward may-be-open dataflow:
//
//   - v.Close()/v.Release() — direct, deferred, or inside a deferred or
//     launched closure — closes the site from that point on;
//   - returning v, storing v (field, global, map, slice, channel), passing
//     v to any call, or capturing it for another purpose transfers
//     ownership and ends tracking;
//   - the error-return convention is understood path-sensitively: on the
//     true edge of `err != nil` (for the err bound at the open site, while
//     still live) the constructor failed and there is nothing to close.
//
// A site that is still open when a non-panic path reaches the function
// exit is reported at the open site. Panic edges are exempt: defer is the
// only cleanup that runs there, and a function whose cleanup must survive
// panics should use it (mustdefer polices the lock flavor of that rule).
package closeleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"nodb/internal/analysis/nodbvet"
)

// OpensFact marks a constructor whose closeable result the caller owns.
const OpensFact = "closeleak.opens"

// Analyzer is the closeleak check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "closeleak",
	Directive: "closeleak-ok",
	Doc: "values returned by closeable-resource constructors (closeleak.opens fact: rawfile.Open, " +
		"Reader.View, core.NewScan, sched.Pool.NewQueue, os.Open, ...) must be closed, returned or " +
		"stored on every CFG path out of the acquiring function, including early-error returns",
	Run: run,
}

// stdOpeners are well-known external constructors that carry no fact
// (the standard library is never analyzed).
var stdOpeners = map[string]bool{
	"os.Open": true, "os.Create": true, "os.OpenFile": true, "os.CreateTemp": true,
	"net.Dial": true, "net.Listen": true,
}

// closeMethods are the method names that release a tracked resource.
var closeMethods = map[string]bool{"Close": true, "Release": true}

// site is one tracked acquisition: a local variable bound to the closeable
// result of an opener call, plus the error variable bound at the same
// assignment (if any) for the failed-constructor refinement.
type site struct {
	id     int
	v      *types.Var // the closeable local; nil for a discarded result
	errv   *types.Var // error bound at the open; nil if none
	pos    token.Pos
	callee string   // short name for diagnostics
	gen    ast.Node // the assignment (or call statement) that opens
}

// Per-site dataflow state bits. A site is tracked while OPEN; ERRLIVE
// means the error variable bound at the open has not been overwritten, so
// an err-nil branch still refers to *this* acquisition.
const (
	stOpen    = 1
	stErrLive = 2
)

// state maps site id -> bits; absent means not open on this path.
type state map[int]int

func (s state) clone() state {
	c := make(state, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

type checker struct {
	pass    *nodbvet.Pass
	graph   *nodbvet.CallGraph
	openers map[*types.Func]bool // in-package openers (fixpoint)

	// Per-function analysis state.
	sites   []*site
	byVar   map[*types.Var][]*site
	byGen   map[ast.Node]*site
	reports map[int]token.Pos // site id -> first leaking exit position
}

func run(pass *nodbvet.Pass) error {
	c := &checker{
		pass:    pass,
		graph:   nodbvet.BuildCallGraph(pass),
		openers: map[*types.Func]bool{},
	}
	c.findOpeners()

	fns := make([]*types.Func, 0, len(c.graph.Decls()))
	for fn := range c.graph.Decls() {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		decl, _ := c.graph.Decl(fn)
		c.checkFunc(decl)
	}

	for fn := range c.openers {
		c.pass.Out.AddFunc(nodbvet.FuncID(fn), OpensFact)
	}
	return nil
}

// isOpener reports whether calling fn hands the caller an open resource:
// an imported fact carrier, a well-known stdlib constructor, or a
// same-package opener from the fixpoint.
func (c *checker) isOpener(fn *types.Func) bool {
	if fn == nil {
		return false
	}
	if c.openers[fn] {
		return true
	}
	if pkg := fn.Pkg(); pkg != nil && stdOpeners[pkg.Name()+"."+fn.Name()] {
		return true
	}
	return c.pass.Deps.FuncHas(nodbvet.FuncID(fn), OpensFact)
}

// closeable reports whether t's method set (or its pointer's) includes a
// Close or Release method.
func closeable(t types.Type) bool {
	if t == nil {
		return false
	}
	for name := range closeMethods {
		if obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name); obj != nil {
			if _, isFunc := obj.(*types.Func); isFunc {
				return true
			}
		}
	}
	return false
}

// findOpeners computes the package's constructor set to fixpoint: a
// function is an opener when some return statement hands back a freshly
// created closeable — a call to a known opener, a composite literal or
// new() of a closeable type, or a local variable assigned from one.
func (c *checker) findOpeners() {
	for changed := true; changed; {
		changed = false
		for fn, decl := range c.graph.Decls() {
			if c.openers[fn] || !c.returnsCloseable(fn) {
				continue
			}
			if c.createsReturnedCloseable(decl) {
				c.openers[fn] = true
				changed = true
			}
		}
	}
}

func (c *checker) returnsCloseable(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if closeable(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// createsReturnedCloseable scans fn's returns (not descending into nested
// function literals) for a freshly-created closeable result.
func (c *checker) createsReturnedCloseable(decl *ast.FuncDecl) bool {
	// Local var -> the expressions ever assigned to it (flow-insensitive).
	assigned := map[*types.Var][]ast.Expr{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := c.objOf(id).(*types.Var)
			if !ok {
				continue
			}
			if len(as.Rhs) == len(as.Lhs) {
				assigned[v] = append(assigned[v], as.Rhs[i])
			} else if len(as.Rhs) == 1 {
				assigned[v] = append(assigned[v], as.Rhs[0])
			}
		}
		return true
	})
	fresh := func(e ast.Expr) bool {
		switch e := ast.Unparen(e).(type) {
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
				if tv, ok := c.pass.TypesInfo.Types[e]; ok {
					return closeable(tv.Type)
				}
			}
			return c.isOpener(c.calleeOf(e))
		case *ast.UnaryExpr:
			if e.Op != token.AND {
				return false
			}
			if _, isLit := ast.Unparen(e.X).(*ast.CompositeLit); !isLit {
				return false
			}
			tv, ok := c.pass.TypesInfo.Types[e]
			return ok && closeable(tv.Type)
		case *ast.CompositeLit:
			tv, ok := c.pass.TypesInfo.Types[e]
			return ok && closeable(tv.Type)
		}
		return false
	}
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			res := ast.Unparen(res)
			if fresh(res) {
				found = true
				return false
			}
			if id, ok := res.(*ast.Ident); ok {
				if v, ok := c.objOf(id).(*types.Var); ok {
					for _, rhs := range assigned[v] {
						if fresh(rhs) {
							found = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return found
}

// ---- per-function leak analysis ----

func (c *checker) checkFunc(decl *ast.FuncDecl) {
	c.sites = nil
	c.byVar = map[*types.Var][]*site{}
	c.byGen = map[ast.Node]*site{}
	c.reports = map[int]token.Pos{}
	c.collectSites(decl)
	if len(c.sites) == 0 {
		return
	}
	cfg := nodbvet.BuildCFG(decl.Body, c.pass.TypesInfo)
	_, out := nodbvet.Solve(cfg, nodbvet.FlowProblem[state]{
		Boundary: state{},
		Bottom:   state{},
		Transfer: c.transfer,
		Edge:     c.refineEdge(cfg),
		Join:     joinStates,
		Equal:    equalStates,
	})

	// Report: a site open in the out-state of a block that edges into Exit
	// on a normal (non-panic) path leaks at that exit.
	for _, b := range cfg.Blocks {
		if b.Panics {
			continue
		}
		leaksHere := false
		for _, s := range b.Succs {
			if s == cfg.Exit {
				leaksHere = true
			}
		}
		if !leaksHere {
			continue
		}
		exitPos := decl.End()
		if b.Return != nil {
			exitPos = b.Return.Pos()
		}
		for id, bits := range out[b] {
			if bits&stOpen == 0 {
				continue
			}
			if cur, seen := c.reports[id]; !seen || exitPos < cur {
				c.reports[id] = exitPos
			}
		}
	}
	ids := make([]int, 0, len(c.reports))
	for id := range c.reports {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := c.sites[id]
		exit := c.pass.Fset.Position(c.reports[id])
		what := "the " + s.callee + " result"
		if s.v == nil {
			c.pass.Reportf(s.pos, "result of %s is discarded without Close: the resource leaks "+
				"immediately — bind and close it, or suppress with //nodbvet:closeleak-ok <why>", s.callee)
			continue
		}
		c.pass.Reportf(s.pos, "%s (%s) is not closed on the path exiting at line %d: close it, "+
			"return it, or hand it off on every path (defer %s.Close() right after the error check), "+
			"or suppress with //nodbvet:closeleak-ok <why>", what, s.v.Name(), exit.Line, s.v.Name())
	}
}

// collectSites finds every acquisition in the function body: assignments
// whose RHS is a call to an opener (tracking each closeable result bound
// to a plain local), and bare opener calls whose result is dropped.
// Nested function literals are skipped — they get their own CFG when their
// enclosing declaration is analyzed, and an opener call inside a literal
// belongs to the literal's execution, not this function's paths.
func (c *checker) collectSites(decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := c.calleeOf(call)
			if !c.isOpener(callee) {
				return true
			}
			sig := callee.Type().(*types.Signature)
			var errv *types.Var
			if len(n.Lhs) == sig.Results().Len() {
				for i := 0; i < sig.Results().Len(); i++ {
					if !isErrorType(sig.Results().At(i).Type()) {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						errv, _ = c.objOf(id).(*types.Var)
					}
				}
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if !closeable(sig.Results().At(i).Type()) {
					continue
				}
				if len(n.Lhs) != sig.Results().Len() && !(sig.Results().Len() == 1 && len(n.Lhs) == 1) {
					continue
				}
				lhs := n.Lhs[i]
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue // stored straight into a field/index: escaped at birth
				}
				s := &site{id: len(c.sites), pos: call.Pos(), callee: nodbvet.ShortName(callee), gen: ast.Stmt(n), errv: errv}
				if id.Name == "_" {
					// Blank-bound closeable: dropped on the floor at the
					// assignment itself.
					s.v = nil
				} else {
					v, ok := c.objOf(id).(*types.Var)
					if !ok {
						continue
					}
					s.v = v
					c.byVar[v] = append(c.byVar[v], s)
				}
				c.sites = append(c.sites, s)
				c.byGen[ast.Stmt(n)] = s
			}
		case *ast.ExprStmt:
			call, ok := ast.Unparen(n.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := c.calleeOf(call)
			if !c.isOpener(callee) {
				return true
			}
			s := &site{id: len(c.sites), pos: call.Pos(), callee: nodbvet.ShortName(callee), gen: ast.Stmt(n)}
			c.sites = append(c.sites, s)
			c.byGen[ast.Stmt(n)] = s
		}
		return true
	})
}

// event kinds a node can apply to a tracked variable.
type event int

const (
	evRead  event = iota // benign use: method receiver, field read, nil compare
	evClose              // Close/Release called (incl. deferred)
	evKill               // ownership left this function: returned, stored, passed
)

func (c *checker) transfer(b *nodbvet.Block, in state) state {
	s := in.clone()
	for _, n := range b.Nodes {
		// Acquisition first-class: gen the site (and retire earlier sites
		// bound to the same variable or error variable).
		if st, ok := n.(ast.Stmt); ok {
			if site, isGen := c.byGen[st]; isGen {
				// Uses inside the opener call's arguments still apply.
				c.scanUses(n, func(v *types.Var, ev event) { applyEvent(s, c.byVar[v], ev) })
				for id, bits := range s {
					other := c.sites[id]
					if site.v != nil && other.v == site.v && other != site {
						delete(s, id) // rebinding the variable retires the old site
						continue
					}
					if site.errv != nil && other.errv == site.errv && other != site {
						s[id] = bits &^ stErrLive // err now describes the new call
					}
				}
				if site.v == nil {
					// Discarded result: report unconditionally (once).
					if _, seen := c.reports[site.id]; !seen {
						c.reports[site.id] = site.pos
					}
					continue
				}
				s[site.id] = stOpen | stErrLive
				continue
			}
		}
		// Overwriting a site's error variable unlinks the err-check
		// refinement from that site.
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if v, ok := c.objOf(id).(*types.Var); ok {
						for sid, bits := range s {
							if c.sites[sid].errv == v {
								s[sid] = bits &^ stErrLive
							}
						}
					}
				}
			}
		}
		c.scanUses(n, func(v *types.Var, ev event) { applyEvent(s, c.byVar[v], ev) })
	}
	return s
}

func applyEvent(s state, sites []*site, ev event) {
	if ev == evRead {
		return
	}
	for _, site := range sites {
		delete(s, site.id)
	}
}

// refineEdge narrows states along branch edges: on the edge where the
// site's bound error is non-nil the constructor failed (nothing to
// close), and on the edge where the tracked value itself is nil there is
// equally nothing to close.
func (c *checker) refineEdge(cfg *nodbvet.CFG) func(from, to *nodbvet.Block, s state) state {
	return func(from, to *nodbvet.Block, s state) state {
		cond, isTrue, ok := cfg.TrueEdge(from, to)
		if !ok || len(s) == 0 {
			return s
		}
		v, isNeq, isNilCmp := nilComparison(c.pass, cond)
		if !isNilCmp {
			return s
		}
		// `x != nil` true-edge and `x == nil` false-edge both mean "x is
		// non-nil here"; the complementary edges mean "x is nil here".
		nonNilOnEdge := isNeq == isTrue
		out := s.clone()
		for id, bits := range s {
			site := c.sites[id]
			// Bound error non-nil: the constructor failed, nothing opened.
			if nonNilOnEdge && site.errv == v && bits&stErrLive != 0 {
				delete(out, id)
			}
			// Tracked value nil: equally nothing to close on this edge.
			if !nonNilOnEdge && site.v == v {
				delete(out, id)
			}
		}
		return out
	}
}

// nilComparison decomposes `x != nil` / `x == nil` (either operand order)
// into the compared variable and the operator.
func nilComparison(pass *nodbvet.Pass, cond ast.Expr) (v *types.Var, isNeq, ok bool) {
	be, isBin := ast.Unparen(cond).(*ast.BinaryExpr)
	if !isBin || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, false, false
	}
	x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
	if isNilIdent(pass, y) {
		// fallthrough with x as the variable side
	} else if isNilIdent(pass, x) {
		x = y
	} else {
		return nil, false, false
	}
	id, isIdent := x.(*ast.Ident)
	if !isIdent {
		return nil, false, false
	}
	vv, isVar := pass.TypesInfo.Uses[id].(*types.Var)
	if !isVar {
		return nil, false, false
	}
	return vv, be.Op == token.NEQ, true
}

func isNilIdent(pass *nodbvet.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name != "nil" {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil || pass.TypesInfo.Uses[id] == nil
}

// scanUses walks one CFG node and classifies every reference to a tracked
// variable: Close/Release receiver (direct, deferred, or inside a closure)
// closes; method receivers, field reads and nil comparisons are benign;
// any other use — return result, call argument, store, capture, send,
// address-of — transfers ownership and ends tracking.
func (c *checker) scanUses(n ast.Node, emit func(*types.Var, event)) {
	var visitExpr func(e ast.Expr)
	var visitStmt func(s ast.Stmt)

	trackedIdent := func(e ast.Expr) *types.Var {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		v, ok := c.objOf(id).(*types.Var)
		if !ok || len(c.byVar[v]) == 0 {
			return nil
		}
		return v
	}

	visitExpr = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case nil:
		case *ast.Ident:
			if v := trackedIdent(e); v != nil {
				emit(v, evKill)
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				if v := trackedIdent(sel.X); v != nil {
					if closeMethods[sel.Sel.Name] {
						emit(v, evClose)
					} else {
						emit(v, evRead) // plain method call: receiver stays owned here
					}
				} else {
					visitExpr(sel.X)
				}
			} else {
				visitExpr(e.Fun)
			}
			for _, a := range e.Args {
				visitExpr(a)
			}
		case *ast.SelectorExpr:
			if v := trackedIdent(e.X); v != nil {
				if closeMethods[e.Sel.Name] {
					emit(v, evClose) // method value: r.Close handed to a cleanup registry
				} else {
					emit(v, evRead) // field read: the resource itself stays put
				}
			} else {
				visitExpr(e.X)
			}
		case *ast.BinaryExpr:
			if _, _, ok := nilComparisonExpr(c.pass, e); ok {
				return // nil check: benign on both sides
			}
			visitExpr(e.X)
			visitExpr(e.Y)
		case *ast.UnaryExpr:
			visitExpr(e.X) // &v or <-v: ident rule applies (escape)
		case *ast.StarExpr:
			visitExpr(e.X)
		case *ast.TypeAssertExpr:
			visitExpr(e.X)
		case *ast.IndexExpr:
			visitExpr(e.X)
			visitExpr(e.Index)
		case *ast.SliceExpr:
			visitExpr(e.X)
			for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
				visitExpr(x)
			}
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				visitExpr(el)
			}
		case *ast.KeyValueExpr:
			visitExpr(e.Key)
			visitExpr(e.Value)
		case *ast.FuncLit:
			// Closure body: same classification applies — a deferred
			// func(){ v.Close() } closes, any other capture escapes.
			for _, st := range e.Body.List {
				visitStmt(st)
			}
		}
	}

	visitStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case nil:
		case *ast.ExprStmt:
			visitExpr(s.X)
		case *ast.AssignStmt:
			// `_ = v` is a keep-alive idiom, not an ownership transfer.
			if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
				if id, ok := ast.Unparen(s.Lhs[0]).(*ast.Ident); ok && id.Name == "_" {
					if trackedIdent(s.Rhs[0]) != nil {
						return
					}
				}
			}
			for _, r := range s.Rhs {
				visitExpr(r)
			}
			for _, l := range s.Lhs {
				if _, ok := ast.Unparen(l).(*ast.Ident); ok {
					continue // rebinding is handled by the transfer itself
				}
				visitExpr(l)
			}
		case *ast.ReturnStmt:
			for _, r := range s.Results {
				visitExpr(r) // returning v = ownership to the caller (evKill)
			}
		case *ast.DeferStmt:
			visitExpr(s.Call)
		case *ast.GoStmt:
			visitExpr(s.Call)
		case *ast.SendStmt:
			visitExpr(s.Chan)
			visitExpr(s.Value)
		case *ast.IncDecStmt:
			visitExpr(s.X)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							visitExpr(v)
						}
					}
				}
			}
		case *ast.RangeStmt:
			visitExpr(s.X)
		case *ast.BlockStmt:
			for _, st := range s.List {
				visitStmt(st)
			}
		case *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt, *ast.LabeledStmt:
			// Control statements never appear whole inside CFG nodes; their
			// evaluated parts arrive as separate nodes.
		case *ast.CaseClause:
			for _, e := range s.List {
				visitExpr(e)
			}
		}
	}

	switch n := n.(type) {
	case ast.Stmt:
		visitStmt(n)
	case ast.Expr:
		visitExpr(n)
	}
}

// nilComparisonExpr is nilComparison over an already-unwrapped BinaryExpr.
func nilComparisonExpr(pass *nodbvet.Pass, be *ast.BinaryExpr) (*types.Var, bool, bool) {
	return nilComparison(pass, be)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

func (c *checker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.TypesInfo.Uses[id]
}

func (c *checker) calleeOf(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func joinStates(a, b state) state {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := a.clone()
	for id, bits := range b {
		if cur, ok := out[id]; ok {
			// Open if open on either path; the err link survives only when
			// live on both (killing on a stale link would hide leaks).
			out[id] = ((cur | bits) & stOpen) | ((cur & bits) & stErrLive)
		} else {
			out[id] = bits
		}
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
