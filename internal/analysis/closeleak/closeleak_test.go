package closeleak_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/closeleak"
	"nodb/internal/analysis/loadpkg"
	"nodb/internal/analysis/nodbvet"
)

func TestCloseleak(t *testing.T) {
	analysistest.Run(t, closeleak.Analyzer, "testdata/core", "testdata/res")
}

// TestOpensFactExports pins exactly which res functions export the
// constructor fact: the direct, wrapped and method constructors do, the
// borrowed-handle accessor does not.
func TestOpensFactExports(t *testing.T) {
	pkg, err := loadpkg.Dir("testdata/res")
	if err != nil {
		t.Fatal(err)
	}
	diags, out, err := nodbvet.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
		[]*nodbvet.Analyzer{closeleak.Analyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in res fixture: %s", d.Message)
	}
	want := map[string]bool{
		"res.OpenHandle":          true,
		"res.OpenWrapped":         true,
		"(*res.Pool).Acquire":     true,
		"(*res.Registry).Current": false,
		"(*res.Registry).Adopt":   false,
		"res.NewPool":             false, // *Pool is not closeable
	}
	for id, wantFact := range want {
		if got := out.FuncHas(id, closeleak.OpensFact); got != wantFact {
			t.Errorf("opens fact for %s = %v, want %v", id, got, wantFact)
		}
	}
}
