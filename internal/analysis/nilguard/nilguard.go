// Package nilguard flags dereferences of values whose constructor can
// return nil alongside a nil error. The Go convention "err == nil implies
// the value is usable" does not hold for lookup-style functions that
// signal absence with (nil, nil); callers that only check err then
// dereference crash on the absent case. Functions with a nilable first
// result and an error second result that contain `return nil, nil` (or
// tail-call another such function) export the "nilguard.maynil" fact;
// consumers track each binding from a carrier through the CFG and report
// a dereference on any path where the value was not first proven non-nil
// by an explicit nil check. The check is path-sensitive via edge
// refinement: `if v == nil { return }` or `if err != nil || v == nil`
// guards clear the state on the surviving branch.
package nilguard

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"nodb/internal/analysis/nodbvet"
)

// MaynilFact marks a function that may return a nil first result together
// with a nil error.
const MaynilFact = "nilguard.maynil"

// Analyzer is the nilguard check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "nilguard",
	Directive: "nilguard-ok",
	Doc: "a value from a function that can return (nil, nil) must be nil-checked before it is " +
		"dereferenced; checking only the error misses the absent case the constructor signals " +
		"with two nils",
	Run: run,
}

// site is one binding of a maybe-nil result.
type site struct {
	id     int
	v      *types.Var
	pos    token.Pos
	callee string
}

type state map[int]bool // site id -> may be nil

type checker struct {
	pass   *nodbvet.Pass
	graph  *nodbvet.CallGraph
	maynil map[*types.Func]bool

	sites []*site
	genAt map[*ast.AssignStmt]*site

	reporting bool
	reported  map[token.Pos]bool
}

func run(pass *nodbvet.Pass) error {
	c := &checker{
		pass:     pass,
		graph:    nodbvet.BuildCallGraph(pass),
		maynil:   map[*types.Func]bool{},
		reported: map[token.Pos]bool{},
	}
	c.findCarriers()

	fns := make([]*types.Func, 0, len(c.graph.Decls()))
	for fn := range c.graph.Decls() {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	for _, fn := range fns {
		decl, _ := c.graph.Decl(fn)
		c.checkFunc(decl)
	}

	for fn, is := range c.maynil {
		if is {
			pass.Out.AddFunc(nodbvet.FuncID(fn), MaynilFact)
		}
	}
	return nil
}

// findCarriers computes, to a fixpoint, the in-package functions that may
// return (nil, nil): a literal `return nil, nil`, or a tail call to
// another carrier (local or via an imported fact).
func (c *checker) findCarriers() {
	for {
		changed := false
		for fn, decl := range c.graph.Decls() {
			if c.maynil[fn] || !nilableResultShape(fn) {
				continue
			}
			if c.returnsNilNil(decl) {
				c.maynil[fn] = true
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// nilableResultShape reports whether fn returns (nilable, error).
func nilableResultShape(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return false
	}
	if !types.Implements(sig.Results().At(1).Type(), errorIface()) {
		return false
	}
	switch sig.Results().At(0).Type().Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Map, *types.Slice, *types.Chan, *types.Signature:
		return true
	}
	return false
}

var errIface *types.Interface

func errorIface() *types.Interface {
	if errIface == nil {
		errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	}
	return errIface
}

func (c *checker) returnsNilNil(decl *ast.FuncDecl) bool {
	found := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		switch len(ret.Results) {
		case 2:
			if c.isNil(ret.Results[0]) && c.isNil(ret.Results[1]) {
				found = true
			}
		case 1:
			if call, isCall := ast.Unparen(ret.Results[0]).(*ast.CallExpr); isCall {
				if fn := c.callee(call); fn != nil && c.isCarrier(fn) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func (c *checker) isNil(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.IsNil()
}

func (c *checker) isCarrier(fn *types.Func) bool {
	return c.maynil[fn] || c.pass.Deps.FuncHas(nodbvet.FuncID(fn), MaynilFact)
}

func (c *checker) checkFunc(decl *ast.FuncDecl) {
	c.sites = nil
	c.genAt = map[*ast.AssignStmt]*site{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) < 1 {
			return true
		}
		call, isCall := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !isCall {
			return true
		}
		fn := c.callee(call)
		if fn == nil || !c.isCarrier(fn) {
			return true
		}
		v := c.lhsVar(as.Lhs[0])
		if v == nil {
			return true
		}
		s := &site{id: len(c.sites), v: v, pos: as.Rhs[0].Pos(), callee: nodbvet.ShortName(fn)}
		c.sites = append(c.sites, s)
		c.genAt[as] = s
		return true
	})
	if len(c.sites) == 0 {
		return
	}

	cfg := nodbvet.BuildCFG(decl.Body, c.pass.TypesInfo)
	c.reporting = false
	in, _ := nodbvet.Solve(cfg, nodbvet.FlowProblem[state]{
		Boundary: state{},
		Bottom:   state{},
		Transfer: c.transfer,
		Edge: func(from, to *nodbvet.Block, s state) state {
			cond, isTrue, ok := cfg.TrueEdge(from, to)
			if !ok {
				return s
			}
			out := copyState(s)
			c.refine(cond, isTrue, out)
			return out
		},
		Join:  joinStates,
		Equal: equalStates,
	})

	// Reporting pass: re-run the transfer at the fixpoint with diagnostics
	// enabled, so each dereference is judged against its block's in-state.
	c.reporting = true
	for _, b := range cfg.Blocks {
		c.transfer(b, in[b])
	}
	c.reporting = false
}

// refine narrows the state along a branch edge. On an edge where the
// condition proves v non-nil (`v != nil` true, `v == nil` false, or the
// false edge of `... || v == nil`, the true edge of `... && v != nil`),
// sites bound to v are cleared.
func (c *checker) refine(cond ast.Expr, isTrue bool, s state) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			c.refine(e.X, !isTrue, s)
		}
	case *ast.BinaryExpr:
		switch {
		case e.Op == token.LOR && !isTrue:
			// Both disjuncts are false on this edge.
			c.refine(e.X, false, s)
			c.refine(e.Y, false, s)
		case e.Op == token.LAND && isTrue:
			// Both conjuncts are true on this edge.
			c.refine(e.X, true, s)
			c.refine(e.Y, true, s)
		case e.Op == token.EQL || e.Op == token.NEQ:
			v, ok := c.nilComparedVar(e)
			if !ok {
				return
			}
			if nonNil := (e.Op == token.NEQ) == isTrue; nonNil {
				for _, site := range c.sites {
					if site.v == v {
						delete(s, site.id)
					}
				}
			}
		}
	}
}

// nilComparedVar extracts v from `v == nil` / `nil != v` comparisons.
func (c *checker) nilComparedVar(e *ast.BinaryExpr) (*types.Var, bool) {
	x, y := ast.Unparen(e.X), ast.Unparen(e.Y)
	if c.isNil(y) {
		return c.exprVar(x)
	}
	if c.isNil(x) {
		return c.exprVar(y)
	}
	return nil, false
}

func (c *checker) exprVar(e ast.Expr) (*types.Var, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil, false
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	return v, ok
}

func (c *checker) transfer(b *nodbvet.Block, in state) state {
	s := copyState(in)
	for _, n := range b.Nodes {
		c.visitNode(n, s)
	}
	return s
}

func (c *checker) visitNode(n ast.Node, s state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, r := range n.Rhs {
			c.visitExpr(r, s)
		}
		if site, ok := c.genAt[n]; ok {
			for _, old := range c.sites {
				if old.v == site.v {
					delete(s, old.id)
				}
			}
			s[site.id] = true
			return
		}
		// A reassignment retires the old binding; handing the value to a
		// new name is not tracked further.
		for _, l := range n.Lhs {
			if v, ok := c.lhsVarUse(l); ok {
				c.killVar(v, s)
			}
		}
	default:
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.AssignStmt:
				c.visitNode(x, s)
				return false
			case ast.Expr:
				c.visitExpr(x, s)
				return false
			}
			return true
		})
	}
}

// visitExpr walks one expression, reporting dereferences of maybe-nil
// values and killing sites whose value escapes to another owner (argument,
// return, send, composite literal): the receiver may do its own checking.
func (c *checker) visitExpr(e ast.Expr, s state) {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if v, ok := c.exprVar(e.X); ok {
			c.deref(e.X.Pos(), v, s)
			return
		}
		c.visitExpr(e.X, s)
	case *ast.StarExpr:
		if v, ok := c.exprVar(e.X); ok {
			c.deref(e.X.Pos(), v, s)
			return
		}
		c.visitExpr(e.X, s)
	case *ast.IndexExpr:
		if v, ok := c.exprVar(e.X); ok {
			c.deref(e.X.Pos(), v, s)
		} else {
			c.visitExpr(e.X, s)
		}
		c.visitExpr(e.Index, s)
	case *ast.SliceExpr:
		if v, ok := c.exprVar(e.X); ok {
			c.deref(e.X.Pos(), v, s)
		} else {
			c.visitExpr(e.X, s)
		}
	case *ast.CallExpr:
		c.visitExpr(e.Fun, s)
		for _, a := range e.Args {
			if v, ok := c.exprVar(a); ok {
				c.killVar(v, s) // passed along: the callee owns the check now
				continue
			}
			c.visitExpr(a, s)
		}
	case *ast.BinaryExpr:
		if (e.Op == token.EQL || e.Op == token.NEQ) && (c.isNil(e.X) || c.isNil(e.Y)) {
			return // the comparison itself is the guard, not a use
		}
		c.visitExpr(e.X, s)
		c.visitExpr(e.Y, s)
	case *ast.UnaryExpr:
		c.visitExpr(e.X, s)
	case *ast.Ident:
		// A bare use (return v, ch <- v, x = v handled by caller contexts
		// that reach here) hands the value on; stop tracking it.
		if v, ok := c.exprVar(e); ok {
			c.killVar(v, s)
		}
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			c.visitExpr(el, s)
		}
	case *ast.KeyValueExpr:
		c.visitExpr(e.Value, s)
	case *ast.TypeAssertExpr:
		c.visitExpr(e.X, s)
	}
}

func (c *checker) deref(pos token.Pos, v *types.Var, s state) {
	for _, site := range c.sites {
		if site.v != v || !s[site.id] {
			continue
		}
		if c.reporting && !c.reported[pos] {
			c.reported[pos] = true
			c.pass.Reportf(pos, "%s may be nil here even though the error was nil (%s can return "+
				"nil, nil); add a nil check before dereferencing", v.Name(), site.callee)
		}
		// One diagnostic per path suffices; the value stays maybe-nil so
		// later guards still refine it, but we do not re-report.
	}
}

func (c *checker) killVar(v *types.Var, s state) {
	for _, site := range c.sites {
		if site.v == v {
			delete(s, site.id)
		}
	}
}

func (c *checker) lhsVar(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if v, ok := c.pass.TypesInfo.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := c.pass.TypesInfo.Uses[id].(*types.Var)
	return v
}

func (c *checker) lhsVarUse(e ast.Expr) (*types.Var, bool) {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil, false
	}
	if v, ok := c.pass.TypesInfo.Uses[id].(*types.Var); ok {
		return v, true
	}
	v, ok := c.pass.TypesInfo.Defs[id].(*types.Var)
	return v, ok
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func copyState(in state) state {
	out := make(state, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

func joinStates(a, b state) state {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(state, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = out[k] || v
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
