// Dep fixture for nilguard: lookup-style constructors. Lookup returns
// (nil, nil) for an absent key, Fetch tail-calls it — both export the
// nilguard.maynil fact. MustGet upholds "err == nil implies usable" and
// must not.
package store

import "errors"

// ErrBad is returned for malformed keys.
var ErrBad = errors.New("bad key")

// Rec is a stored record.
type Rec struct {
	Key string
	n   int
}

// Bump touches the record.
func (r *Rec) Bump() { r.n++ }

// Lookup returns the record for k, or (nil, nil) when k is absent:
// absence is not an error. Exports nilguard.maynil.
func Lookup(k string) (*Rec, error) {
	if k == "" {
		return nil, ErrBad
	}
	return nil, nil
}

// Fetch wraps Lookup without adding a guarantee: transitively maynil.
func Fetch(k string) (*Rec, error) {
	return Lookup(k)
}

// MustGet never returns (nil, nil): a nil record always comes with an
// error, so callers may rely on the usual contract. No fact.
func MustGet(k string) (*Rec, error) {
	if k == "" {
		return nil, ErrBad
	}
	return &Rec{Key: k}, nil
}
