// Consumer fixture for nilguard: bindings from store's maynil carriers
// dereferenced with and without nil checks, across guard shapes —
// standalone checks, combined err-or-nil conditions, negated guards —
// plus a same-package carrier and the suppression escape hatch.
package engine

import "store"

func sink(string) {}

// DerefErrCheckOnly is the canonical bug: the error check passes but the
// record may still be nil.
func DerefErrCheckOnly(k string) string {
	r, err := store.Lookup(k)
	if err != nil {
		return ""
	}
	return r.Key // want `may be nil here even though the error was nil`
}

// DerefTransitive: Fetch inherits the fact from Lookup.
func DerefTransitive(k string) string {
	r, err := store.Fetch(k)
	if err != nil {
		return ""
	}
	return r.Key // want `may be nil here even though the error was nil`
}

// DerefMethodCall: calling a method on the maybe-nil pointer counts.
func DerefMethodCall(k string) {
	r, err := store.Lookup(k)
	if err != nil {
		return
	}
	r.Bump() // want `may be nil here even though the error was nil`
}

// localFind is a same-package carrier: recognized without any fact.
func localFind(k string) (*store.Rec, error) {
	if k == "x" {
		return nil, nil
	}
	return store.MustGet(k)
}

// DerefLocalCarrier: the same-package carrier is tracked too.
func DerefLocalCarrier(k string) string {
	r, err := localFind(k)
	if err != nil {
		return ""
	}
	return r.Key // want `may be nil here even though the error was nil`
}

// CleanNilChecked returns on the nil branch before dereferencing.
func CleanNilChecked(k string) string {
	r, err := store.Lookup(k)
	if err != nil {
		return ""
	}
	if r == nil {
		return "absent"
	}
	return r.Key
}

// CleanNonNilBranch dereferences only inside the proven branch.
func CleanNonNilBranch(k string) string {
	r, err := store.Lookup(k)
	if err == nil && r != nil {
		return r.Key
	}
	return ""
}

// CleanCombinedGuard uses the idiomatic single condition: on the
// surviving edge both disjuncts are false, so r is non-nil.
func CleanCombinedGuard(k string) string {
	r, err := store.Lookup(k)
	if err != nil || r == nil {
		return ""
	}
	return r.Key
}

// CleanNegatedGuard proves non-nil through a negation.
func CleanNegatedGuard(k string) string {
	r, err := store.Lookup(k)
	if !(err == nil && r != nil) {
		return ""
	}
	return r.Key
}

// CleanFromMust: MustGet carries no fact, the usual contract applies.
func CleanFromMust(k string) string {
	r, err := store.MustGet(k)
	if err != nil {
		return ""
	}
	return r.Key
}

// CleanPassedAlong hands the maybe-nil value to another function, which
// owns the check from then on.
func CleanPassedAlong(k string) {
	r, err := store.Lookup(k)
	if err != nil {
		return
	}
	use(r)
}

func use(r *store.Rec) {
	if r != nil {
		sink(r.Key)
	}
}

// CleanReturned forwards the pair to the caller unchanged.
func CleanReturned(k string) (*store.Rec, error) {
	r, err := store.Lookup(k)
	return r, err
}

// SuppressedDeref documents an out-of-band invariant the analyzer cannot
// see; the justified directive silences it.
func SuppressedDeref(k string) string {
	r, err := store.Lookup(k)
	if err != nil {
		return ""
	}
	return r.Key //nodbvet:nilguard-ok k comes from the seeded keyspace, always present
}
