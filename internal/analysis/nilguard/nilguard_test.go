package nilguard_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/loadpkg"
	"nodb/internal/analysis/nilguard"
	"nodb/internal/analysis/nodbvet"
)

func TestNilguard(t *testing.T) {
	analysistest.Run(t, nilguard.Analyzer, "testdata/engine", "testdata/store")
}

// TestMaynilFactExports pins which store functions carry the fact: the
// (nil, nil) returner and its tail-call wrapper do, the always-usable
// constructor does not.
func TestMaynilFactExports(t *testing.T) {
	pkg, err := loadpkg.Dir("testdata/store")
	if err != nil {
		t.Fatal(err)
	}
	diags, out, err := nodbvet.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
		[]*nodbvet.Analyzer{nilguard.Analyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in store fixture: %s", d.Message)
	}
	want := map[string]bool{
		"store.Lookup":  true,
		"store.Fetch":   true,
		"store.MustGet": false,
	}
	for id, wantFact := range want {
		if got := out.FuncHas(id, nilguard.MaynilFact); got != wantFact {
			t.Errorf("maynil fact for %s = %v, want %v", id, got, wantFact)
		}
	}
}
