// Package mapiter flags map iteration on the engine's deterministic paths.
//
// The ordered-commit contract (PRs 1-2) promises that results, adaptive
// structure contents and counters are byte-identical at any parallelism.
// Go's map iteration order is deliberately randomized, so a `range` over a
// map anywhere on an ordered-commit / result-emission path is a
// nondeterminism bug of exactly the grouping-key class fixed in PR 2 —
// unless the keys are collected and sorted first, or the site carries a
// //nodbvet:unordered-ok justification (e.g. the loop only folds into an
// order-insensitive accumulator).
//
// The check is cross-package: every module package exports the
// "mapiter.ranges" fact for functions that (transitively) iterate an
// unsorted map, and a call to such a carrier from an ordered path in the
// checked packages is flagged at the call site — a posmap helper that
// ranges its shard map is just as nondeterministic when core's commit
// calls it as a local loop would be.
package mapiter

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"nodb/internal/analysis/nodbvet"
)

// RangesFact marks a function that (transitively) iterates an unsorted
// map.
const RangesFact = "mapiter.ranges"

// Roots names, per package, the entry points of ordered-commit and
// result-emission paths; every package function reachable from them is
// checked. Matching is by bare function/method name, so "Next" covers every
// operator's Next method.
var Roots = map[string]map[string]bool{
	// internal/core: chunk commit/merge and the scan's serving surface.
	"core": {"commit": true, "mergePartials": true, "Next": true, "NextBatch": true, "DrainAgg": true},
	// internal/engine: operator output.
	"engine": {"Next": true, "NextBatch": true},
	// internal/expr: aggregate state merge and finalization.
	"expr": {"Merge": true, "Result": true},
}

// Analyzer is the mapiter check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "mapiter",
	Directive: "unordered-ok",
	Doc: "flags range-over-map in functions reachable from ordered-commit/result-emission paths " +
		"(core commit/merge, engine operator output, expr aggregate merge); map order is randomized, " +
		"so such loops break the byte-identical-at-any-parallelism contract unless keys are sorted first",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	g := nodbvet.BuildCallGraph(pass)
	roots, checked := Roots[pass.Pkg.Name()]
	var reach map[*types.Func]bool
	if checked {
		reach = g.ReachableFrom(roots)
	}

	// Direct unsorted-map-range sites per declared function.
	direct := map[*types.Func][]token.Pos{}
	for fn, decl := range g.Decls() {
		fn, decl := fn, decl
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectsSortedKeys(pass, rng, decl) {
				return true
			}
			direct[fn] = append(direct[fn], rng.Pos())
			return true
		})
	}

	// Report in checked packages: direct ranges and imported fact carriers
	// called from root-reachable functions.
	if checked {
		type finding struct {
			pos token.Pos
			msg string
		}
		var found []finding
		for fn := range reach {
			if _, declared := g.Decl(fn); !declared {
				continue
			}
			for _, pos := range direct[fn] {
				found = append(found, finding{pos,
					"range over map in " + fn.Name() + ", which is reachable from an ordered-commit/" +
						"result-emission root; map order is randomized — iterate sorted keys, keep a " +
						"first-seen order slice, or suppress with //nodbvet:unordered-ok <why>"})
			}
			for _, site := range g.Sites(fn) {
				if _, declared := g.Decl(site.Callee); declared {
					continue // local ranges report at their own site
				}
				if pass.Deps.FuncHas(nodbvet.FuncID(site.Callee), RangesFact) {
					found = append(found, finding{site.Pos,
						"call to " + nodbvet.ShortName(site.Callee) + " iterates an unsorted map " +
							"(mapiter.ranges fact) on an ordered-commit/result-emission path — have the " +
							"callee iterate sorted keys, or suppress with //nodbvet:unordered-ok <why>"})
				}
			}
		}
		sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
		for _, f := range found {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}

	// Facts: functions with an unsuppressed unsorted map range, closed over
	// local calls and imported carriers, exported from every package.
	tainted := map[*types.Func]bool{}
	for fn, sites := range direct {
		for _, pos := range sites {
			if !pass.SuppressedAt(pos) {
				tainted[fn] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.Decls() {
			if tainted[fn] {
				continue
			}
			for _, site := range g.Sites(fn) {
				if tainted[site.Callee] {
					tainted[fn] = true
					changed = true
					break
				}
				if _, declared := g.Decl(site.Callee); !declared &&
					pass.Deps.FuncHas(nodbvet.FuncID(site.Callee), RangesFact) &&
					!pass.SuppressedAt(site.Pos) {
					tainted[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn := range tainted {
		pass.Out.AddFunc(nodbvet.FuncID(fn), RangesFact)
	}
	return nil
}

// collectsSortedKeys recognizes the one blessed shape of map iteration on
// an ordered path: a loop whose body only appends the key (or value) to a
// slice that the same function later sorts.
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)            // or sort.Slice(keys, ...), slices.Sort(keys)
func collectsSortedKeys(pass *nodbvet.Pass, rng *ast.RangeStmt, decl *ast.FuncDecl) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dst)
	if dstObj == nil {
		return false
	}
	// The collected slice must be sorted somewhere in the same function:
	// a call like sort.X(dst, ...) or slices.Sort(dst).
	sorted := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); !ok ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(arg) == dstObj {
			sorted = true
		}
		return true
	})
	return sorted
}
