// Package mapiter flags map iteration on the engine's deterministic paths.
//
// The ordered-commit contract (PRs 1-2) promises that results, adaptive
// structure contents and counters are byte-identical at any parallelism.
// Go's map iteration order is deliberately randomized, so a `range` over a
// map anywhere on an ordered-commit / result-emission path is a
// nondeterminism bug of exactly the grouping-key class fixed in PR 2 —
// unless the keys are collected and sorted first, or the site carries a
// //nodbvet:unordered-ok justification (e.g. the loop only folds into an
// order-insensitive accumulator).
package mapiter

import (
	"go/ast"
	"go/types"

	"nodb/internal/analysis/nodbvet"
)

// Roots names, per package, the entry points of ordered-commit and
// result-emission paths; every package function reachable from them is
// checked. Matching is by bare function/method name, so "Next" covers every
// operator's Next method.
var Roots = map[string]map[string]bool{
	// internal/core: chunk commit/merge and the scan's serving surface.
	"core": {"commit": true, "mergePartials": true, "Next": true, "NextBatch": true, "DrainAgg": true},
	// internal/engine: operator output.
	"engine": {"Next": true, "NextBatch": true},
	// internal/expr: aggregate state merge and finalization.
	"expr": {"Merge": true, "Result": true},
}

// Analyzer is the mapiter check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "mapiter",
	Directive: "unordered-ok",
	Doc: "flags range-over-map in functions reachable from ordered-commit/result-emission paths " +
		"(core commit/merge, engine operator output, expr aggregate merge); map order is randomized, " +
		"so such loops break the byte-identical-at-any-parallelism contract unless keys are sorted first",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	roots, ok := Roots[pass.Pkg.Name()]
	if !ok {
		return nil
	}
	g := nodbvet.BuildCallGraph(pass)
	for fn := range g.ReachableFrom(roots) {
		decl, ok := g.Decl(fn)
		if !ok {
			continue
		}
		checkFunc(pass, fn, decl)
	}
	return nil
}

func checkFunc(pass *nodbvet.Pass, fn *types.Func, decl *ast.FuncDecl) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if collectsSortedKeys(pass, rng, decl) {
			return true
		}
		pass.Reportf(rng.Pos(),
			"range over map in %s, which is reachable from an ordered-commit/result-emission root; "+
				"map order is randomized — iterate sorted keys, keep a first-seen order slice, "+
				"or suppress with //nodbvet:unordered-ok <why>", fn.Name())
		return true
	})
}

// collectsSortedKeys recognizes the one blessed shape of map iteration on
// an ordered path: a loop whose body only appends the key (or value) to a
// slice that the same function later sorts.
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)            // or sort.Slice(keys, ...), slices.Sort(keys)
func collectsSortedKeys(pass *nodbvet.Pass, rng *ast.RangeStmt, decl *ast.FuncDecl) bool {
	if len(rng.Body.List) != 1 {
		return false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dst, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	if fun, ok := call.Fun.(*ast.Ident); !ok || fun.Name != "append" {
		return false
	}
	dstObj := pass.TypesInfo.ObjectOf(dst)
	if dstObj == nil {
		return false
	}
	// The collected slice must be sorted somewhere in the same function:
	// a call like sort.X(dst, ...) or slices.Sort(dst).
	sorted := false
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 || sorted {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		if pkgName, ok := pass.TypesInfo.Uses[pkg].(*types.PkgName); !ok ||
			(pkgName.Imported().Path() != "sort" && pkgName.Imported().Path() != "slices") {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(arg) == dstObj {
			sorted = true
		}
		return true
	})
	return sorted
}
