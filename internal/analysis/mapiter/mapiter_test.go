package mapiter_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/mapiter"
)

func TestMapiter(t *testing.T) {
	analysistest.Run(t, mapiter.Analyzer, "testdata/core", "testdata/groupmap")
}
