// Fixture for the mapiter analyzer. The package is named core so the
// analyzer's root set applies: commit, Next, NextBatch and DrainAgg are
// ordered-commit/result-emission roots here.
package core

import (
	"sort"

	"groupmap"
)

type scan struct {
	groups map[string]int
}

// commit is a root: direct map iteration is flagged.
func (s *scan) commit() int {
	total := 0
	for _, v := range s.groups { // want `range over map in commit`
		total += v
	}
	return total
}

// Next is a root; emitViaHelper is reachable from it, so its map range is
// flagged too.
func (s *scan) Next() []string {
	return s.emitViaHelper()
}

func (s *scan) emitViaHelper() []string {
	var out []string
	for k := range s.groups { // want `range over map in emitViaHelper`
		out = append(out, k)
	}
	return out
}

// NextBatch shows the blessed shape: collect the keys, then sort them.
func (s *scan) NextBatch() []string {
	var keys []string
	for k := range s.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// DrainAgg carries a justified suppression: the loop only folds into an
// order-insensitive accumulator.
func (s *scan) DrainAgg() int {
	n := 0
	//nodbvet:unordered-ok order-insensitive count accumulation
	for range s.groups {
		n++
	}
	return n
}

// unreachable is not reachable from any root: map order cannot leak into
// emitted results, so it is clean.
func (s *scan) unreachable() int {
	n := 0
	for range s.groups {
		n++
	}
	return n
}

// mergePartials is a root calling imported helpers: the mapiter.ranges
// fact carriers are flagged at the call sites, the sorted and justified
// ones stay clean.
func (s *scan) mergePartials() []string {
	_ = groupmap.Keys(s.groups)         // want `call to groupmap\.Keys iterates an unsorted map`
	_ = groupmap.KeysIndirect(s.groups) // want `call to groupmap\.KeysIndirect iterates an unsorted map`
	_ = groupmap.Count(s.groups)
	return groupmap.SortedKeys(s.groups)
}

// offPath calls a carrier outside any root-reachable function: clean here,
// but offPath itself inherits the fact for its own callers.
func (s *scan) offPath() []string {
	return groupmap.Keys(s.groups)
}
