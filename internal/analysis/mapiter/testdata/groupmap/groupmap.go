// Dep fixture for mapiter: a helper package whose unsorted map iteration
// is exported as the mapiter.ranges fact and consumed across the package
// boundary by the core fixture.
package groupmap

import "sort"

// Keys iterates its map unsorted: fact exported.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// KeysIndirect taints transitively through Keys.
func KeysIndirect(m map[string]int) []string {
	return Keys(m)
}

// SortedKeys uses the blessed collect-then-sort shape: no fact.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Count folds order-insensitively and carries a justification, so the
// fact is withheld.
func Count(m map[string]int) int {
	n := 0
	//nodbvet:unordered-ok fixture: order-insensitive count accumulation
	for range m {
		n++
	}
	return n
}
