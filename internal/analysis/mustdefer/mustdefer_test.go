package mustdefer_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/loadpkg"
	"nodb/internal/analysis/mustdefer"
	"nodb/internal/analysis/nodbvet"
)

func TestMustdefer(t *testing.T) {
	analysistest.Run(t, mustdefer.Analyzer, "testdata/sched", "testdata/locks")
}

// TestReleasesFactExports pins which locks functions carry the release
// helper fact: Finish unlocks a mutex it never locked (helper), Bump is
// balanced (not a helper).
func TestReleasesFactExports(t *testing.T) {
	pkg, err := loadpkg.Dir("testdata/locks")
	if err != nil {
		t.Fatal(err)
	}
	diags, out, err := nodbvet.RunAnalyzers(pkg.Fset, pkg.Files, pkg.Types, pkg.Info,
		[]*nodbvet.Analyzer{mustdefer.Analyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in locks fixture: %s", d.Message)
	}
	got := out.FuncValues("(*locks.Guard).Finish", mustdefer.ReleasesFact)
	if len(got) != 1 || got[0] != "(locks.Guard).Mu" {
		t.Errorf("releases fact for Finish = %v, want [(locks.Guard).Mu]", got)
	}
	if out.FuncHas("(*locks.Guard).Bump", mustdefer.ReleasesFact) {
		t.Errorf("Bump is balanced and must not export %s", mustdefer.ReleasesFact)
	}
}
