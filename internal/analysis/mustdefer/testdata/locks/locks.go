// Dep fixture for mustdefer: Guard.Finish releases a critical section its
// caller opened, so it exports the mustdefer.releases fact; Bump is
// balanced (locks and unlocks) and must not.
package locks

import "sync"

// Guard wraps a mutex whose critical sections span helper calls.
type Guard struct {
	Mu sync.Mutex
	n  int
}

// Finish closes a critical section opened by the caller: it unlocks a
// mutex it never locked, so it carries mustdefer.releases.
func (g *Guard) Finish() {
	g.n++
	g.Mu.Unlock()
}

// Bump is a self-contained critical section: no fact.
func (g *Guard) Bump() {
	g.Mu.Lock()
	g.n++
	g.Mu.Unlock()
}
