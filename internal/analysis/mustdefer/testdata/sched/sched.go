// Consumer fixture for mustdefer: lock/unlock shapes from the scan
// packages — early returns, read locks, flavor mismatches, loop
// re-locking, release helpers (local and via the imported
// mustdefer.releases fact), panic paths, and patterns that need a
// justified suppression.
package sched

import (
	"sync"

	"locks"
)

type pool struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func busy() bool { return false }

// LeakEarlyReturn is the canonical bug: the fast path returns without
// unlocking, freezing every later caller.
func (p *pool) LeakEarlyReturn() int {
	p.mu.Lock() // want `still held on the path exiting at line`
	if p.n == 0 {
		return 0 // leaks the lock
	}
	n := p.n
	p.mu.Unlock()
	return n
}

// LeakRLockNoRUnlock takes the read lock and never gives it back on the
// early path.
func (p *pool) LeakRLockNoRUnlock() int {
	p.rw.RLock() // want `still held on the path exiting at line`
	if busy() {
		return -1
	}
	n := p.n
	p.rw.RUnlock()
	return n
}

// LeakWrongFlavor pairs RLock with Unlock: the flavors must match, so
// the read lock is never released.
func (p *pool) LeakWrongFlavor() int {
	p.rw.RLock() // want `still held on the path exiting at line`
	n := p.n
	p.rw.Unlock()
	return n
}

// LeakBreakInLoop: the break path escapes the loop between Lock and
// Unlock.
func (p *pool) LeakBreakInLoop() {
	for i := 0; i < 4; i++ {
		p.mu.Lock() // want `still held on the path exiting at line`
		if busy() {
			break // leaks this iteration's lock
		}
		p.n++
		p.mu.Unlock()
	}
}

// CleanDefer is the house style: defer right after acquiring covers
// every exit, panics included.
func (p *pool) CleanDefer() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.n == 0 {
		return 0
	}
	return p.n
}

// CleanDeferredClosure releases inside a deferred closure.
func (p *pool) CleanDeferredClosure() {
	p.mu.Lock()
	defer func() {
		p.n++
		p.mu.Unlock()
	}()
	p.n++
}

// CleanAllPaths unlocks manually on every route out.
func (p *pool) CleanAllPaths() int {
	p.mu.Lock()
	if p.n == 0 {
		p.mu.Unlock()
		return 0
	}
	n := p.n
	p.mu.Unlock()
	return n
}

// CleanWorkerLoop is the sched pool protocol: hold across bookkeeping,
// drop the lock around the work, re-take it for the next iteration.
func (p *pool) CleanWorkerLoop(work func()) {
	p.mu.Lock()
	for p.n > 0 {
		p.n--
		p.mu.Unlock()
		work()
		p.mu.Lock()
	}
	p.mu.Unlock()
}

// done is a local release helper: it unlocks a mutex it never locked,
// so callers may end their critical sections through it.
func (p *pool) done() {
	p.n++
	p.mu.Unlock()
}

// CleanLocalHelper closes the critical section via the local helper.
func (p *pool) CleanLocalHelper() {
	p.mu.Lock()
	p.done()
}

// CleanFactHelper closes the critical section via an imported helper
// that carries the mustdefer.releases fact.
func CleanFactHelper(g *locks.Guard) {
	g.Mu.Lock()
	g.Finish()
}

// CleanPanicPath: panic edges are exempt — defer is the only cleanup
// that runs there, and the normal path unlocks.
func (p *pool) CleanPanicPath() {
	p.mu.Lock()
	if p.n < 0 {
		panic("negative refcount")
	}
	p.n--
	p.mu.Unlock()
}

// SuppressedFlagGuard locks conditionally under a caller flag; both
// branches agree but the analyzer cannot correlate them.
func (p *pool) SuppressedFlagGuard(locked bool) {
	if locked {
		p.mu.Lock() //nodbvet:mustdefer-ok lock/unlock both gated on the same caller flag
	}
	p.n++
	if locked {
		p.mu.Unlock()
	}
}

// SuppressedAcquireHelper intentionally returns holding the lock: its
// pair lives in done. The invariant is real, so the exemption must be
// spelled out.
func (p *pool) SuppressedAcquireHelper() {
	p.mu.Lock() //nodbvet:mustdefer-ok acquire half of the done() protocol; every caller pairs them
	p.n++
}
