// Package mustdefer enforces structural lock hygiene in the scan packages
// (nodb, core, engine, rawfile, sched): a mutex acquired in a function must
// be released on *every* non-panic path out of it — by a deferred Unlock,
// by an Unlock that dominates the exit, or by handing the critical section
// to a release helper. The PR 8 sweep found DB.Close holding db.mu across
// table-close I/O by mutex-identity special cases; this analyzer catches
// the whole class structurally: any early return that skips the Unlock is
// a finding at the Lock site, path-computed over the nodbvet CFG rather
// than pattern-matched.
//
// Lock identity is structural, as in lockorder: "(pkg.Type).field" for a
// struct-field mutex, "pkg.var" for a package-level one. Lock pairs with
// Unlock and RLock with RUnlock. A function that unlocks a mutex it did
// not itself lock is a release helper: it exports the "mustdefer.releases"
// fact (with the lock IDs it releases), and a call to it — same package or
// imported — counts as the release on that path.
package mustdefer

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"nodb/internal/analysis/nodbvet"
)

// ReleasesFact marks a function that releases locks it did not acquire;
// its values are the structural lock IDs released.
const ReleasesFact = "mustdefer.releases"

// Packages lists the package names whose functions are checked. The fact
// still exports everywhere, so helpers in other packages participate.
var Packages = map[string]bool{"nodb": true, "core": true, "engine": true, "rawfile": true, "sched": true}

// Analyzer is the mustdefer check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "mustdefer",
	Directive: "mustdefer-ok",
	Doc: "a mutex locked in a scan-package function must be unlocked on every non-panic path out of " +
		"it (defer it, unlock before each return, or call a mustdefer.releases helper); an early " +
		"return holding the lock freezes every other path into the critical section",
	Run: run,
}

// acqSite is one Lock/RLock call being tracked through the CFG.
type acqSite struct {
	id     int
	lockID string
	read   bool // RLock (pairs with RUnlock)
	pos    token.Pos
	call   *ast.CallExpr
}

type state map[int]bool // site id -> may still be held

type checker struct {
	pass     *nodbvet.Pass
	graph    *nodbvet.CallGraph
	releases map[*types.Func]map[string]bool // local release helpers

	sites  []*acqSite
	byCall map[*ast.CallExpr]*acqSite
}

func run(pass *nodbvet.Pass) error {
	c := &checker{
		pass:     pass,
		graph:    nodbvet.BuildCallGraph(pass),
		releases: map[*types.Func]map[string]bool{},
	}
	c.findReleaseHelpers()

	fns := make([]*types.Func, 0, len(c.graph.Decls()))
	for fn := range c.graph.Decls() {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Pos() < fns[j].Pos() })
	if Packages[pass.Pkg.Name()] {
		for _, fn := range fns {
			decl, _ := c.graph.Decl(fn)
			c.checkFunc(decl)
		}
	}

	for fn, ids := range c.releases {
		if len(ids) == 0 {
			continue
		}
		sorted := make([]string, 0, len(ids))
		for id := range ids {
			sorted = append(sorted, id)
		}
		sort.Strings(sorted)
		pass.Out.AddFunc(nodbvet.FuncID(fn), ReleasesFact, sorted...)
	}
	return nil
}

// findReleaseHelpers marks functions that unlock locks they never lock:
// their callers may rely on them to close a critical section.
func (c *checker) findReleaseHelpers() {
	for fn, decl := range c.graph.Decls() {
		locked := map[string]bool{}
		released := map[string]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, op, _, ok := c.lockOp(call); ok {
				if op == "acquire" {
					locked[id] = true
				} else {
					released[id] = true
				}
			}
			return true
		})
		helper := map[string]bool{}
		for id := range released {
			if !locked[id] {
				helper[id] = true
			}
		}
		if len(helper) > 0 {
			c.releases[fn] = helper
		}
	}
}

// releasedBy returns the lock IDs a call releases on behalf of the caller:
// a local release helper or an imported mustdefer.releases carrier.
func (c *checker) releasedBy(call *ast.CallExpr) []string {
	callee := c.callee(call)
	if callee == nil {
		return nil
	}
	if ids, ok := c.releases[callee]; ok {
		out := make([]string, 0, len(ids))
		for id := range ids {
			out = append(out, id)
		}
		sort.Strings(out)
		return out
	}
	return c.pass.Deps.FuncValues(nodbvet.FuncID(callee), ReleasesFact)
}

func (c *checker) checkFunc(decl *ast.FuncDecl) {
	c.sites = nil
	c.byCall = map[*ast.CallExpr]*acqSite{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // a literal's critical sections are its own
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, op, read, ok := c.lockOp(call); ok && op == "acquire" {
			s := &acqSite{id: len(c.sites), lockID: id, read: read, pos: call.Pos(), call: call}
			c.sites = append(c.sites, s)
			c.byCall[call] = s
		}
		return true
	})
	if len(c.sites) == 0 {
		return
	}

	cfg := nodbvet.BuildCFG(decl.Body, c.pass.TypesInfo)
	_, out := nodbvet.Solve(cfg, nodbvet.FlowProblem[state]{
		Boundary: state{},
		Bottom:   state{},
		Transfer: c.transfer,
		Join:     joinStates,
		Equal:    equalStates,
	})

	leaks := map[int]token.Pos{} // site -> first exit position still held
	for _, b := range cfg.Blocks {
		if b.Panics {
			continue
		}
		toExit := false
		for _, s := range b.Succs {
			if s == cfg.Exit {
				toExit = true
			}
		}
		if !toExit {
			continue
		}
		exitPos := decl.End()
		if b.Return != nil {
			exitPos = b.Return.Pos()
		}
		for id, held := range out[b] {
			if !held {
				continue
			}
			if cur, seen := leaks[id]; !seen || exitPos < cur {
				leaks[id] = exitPos
			}
		}
	}
	ids := make([]int, 0, len(leaks))
	for id := range leaks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		s := c.sites[id]
		verb := "Unlock"
		if s.read {
			verb = "RUnlock"
		}
		exit := c.pass.Fset.Position(leaks[id])
		c.pass.Reportf(s.pos, "%s is still held on the path exiting at line %d: defer the %s right "+
			"after acquiring, release before every return, or suppress with //nodbvet:mustdefer-ok <why>",
			s.lockID, exit.Line, verb)
	}
}

// transfer applies a block's lock operations: acquisitions set their
// site's held bit; a matching Unlock (direct, deferred, or via a release
// helper) clears every matching site.
func (c *checker) transfer(b *nodbvet.Block, in state) state {
	s := make(state, len(in))
	for k, v := range in {
		s[k] = v
	}
	for _, n := range b.Nodes {
		ast.Inspect(n, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				// Deferred closures run at exit: a release inside one
				// covers every later exit, same as a direct defer.
				if !underDefer(n, x) {
					return false
				}
				return true
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if site, isAcq := c.byCall[call]; isAcq {
				s[site.id] = true
				return true
			}
			if id, op, read, ok := c.lockOp(call); ok && op == "release" {
				for _, site := range c.sites {
					if site.lockID == id && site.read == read {
						delete(s, site.id)
					}
				}
				return true
			}
			for _, id := range c.releasedBy(call) {
				for _, site := range c.sites {
					if site.lockID == id {
						delete(s, site.id)
					}
				}
			}
			return true
		})
	}
	return s
}

// underDefer reports whether lit is (part of) the call of a defer
// statement rooted at node n.
func underDefer(n ast.Node, lit ast.Node) bool {
	ds, ok := n.(*ast.DeferStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ds.Call, func(x ast.Node) bool {
		if x == lit {
			found = true
		}
		return !found
	})
	return found
}

// lockOp classifies a call as a mutex acquire/release, naming the lock
// structurally and distinguishing the read flavor.
func (c *checker) lockOp(call *ast.CallExpr) (id, op string, read, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	m, isFn := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !isFn || m.Pkg() == nil || m.Pkg().Path() != "sync" {
		return "", "", false, false
	}
	switch m.Name() {
	case "Lock":
		op = "acquire"
	case "RLock":
		op, read = "acquire", true
	case "Unlock":
		op = "release"
	case "RUnlock":
		op, read = "release", true
	default:
		return "", "", false, false
	}
	id = c.lockID(sel.X)
	if id == "" {
		return "", "", false, false
	}
	return id, op, read, true
}

// lockID names the mutex expression: "(pkg.Type).field" for a struct
// field, "pkg.var" for a package-level var (same scheme as lockorder).
func (c *checker) lockID(x ast.Expr) string {
	switch x := x.(type) {
	case *ast.SelectorExpr:
		if sel, ok := c.pass.TypesInfo.Selections[x]; ok {
			t := sel.Recv()
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
			}
			if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
				return fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Name(), named.Obj().Name(), x.Sel.Name)
			}
			return ""
		}
		if v, ok := c.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok && v.Pkg() != nil {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.Ident:
		if v, ok := c.pass.TypesInfo.Uses[x].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	}
	return ""
}

func (c *checker) callee(call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := c.pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func joinStates(a, b state) state {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make(state, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = out[k] || v
	}
	return out
}

func equalStates(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
