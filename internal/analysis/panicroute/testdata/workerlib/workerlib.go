// Dep fixture for panicroute: Contained opens with a faults-routed
// recover and exports the panicroute.routes fact; Naked does not.
package workerlib

import "nodb/internal/faults"

// Contained is safe to launch directly from a scan package.
func Contained(path string) {
	defer func() {
		if rec := recover(); rec != nil {
			_ = faults.Panicked(path, 0, rec)
		}
	}()
}

// Naked has no recover: launching it from a scan package is flagged.
func Naked() {}
