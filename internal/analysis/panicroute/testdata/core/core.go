// Fixture for the panicroute analyzer. The package is named core so every
// goroutine launch in it is checked for faults-routed panic containment.
package core

import (
	"fmt"

	"workerlib"

	"nodb/internal/faults"
)

type pool struct{ path string }

// start launches goroutines in every containment state.
func (p *pool) start() {
	go p.contained() // declaration with a faults recover: clean
	go p.naked()     // want `no top-level deferred recover`
	go func() {      // want `no top-level deferred recover`
		fmt.Println("work")
	}()
	go func() { // literal with a faults recover: clean
		defer func() {
			if rec := recover(); rec != nil {
				_ = faults.Panicked(p.path, 0, rec)
			}
		}()
	}()
	go fmt.Println("external") // want `outside this package`
	//nodbvet:panicroute-ok fixture goroutine supervised by the harness, panics asserted directly
	go p.naked()
	go workerlib.Contained(p.path) // imported panicroute.routes carrier: clean
	go workerlib.Naked()           // want `outside this package`
}

func (p *pool) contained() {
	defer func() {
		if rec := recover(); rec != nil {
			_ = faults.Panicked(p.path, 0, rec)
		}
	}()
}

func (p *pool) naked() {}
