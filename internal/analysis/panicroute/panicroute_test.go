package panicroute_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/panicroute"
)

func TestPanicroute(t *testing.T) {
	analysistest.Run(t, panicroute.Analyzer, "testdata/core", "testdata/workerlib")
}
