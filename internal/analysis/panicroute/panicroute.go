// Package panicroute enforces the PR 6 panic-containment contract: a panic
// on a scan goroutine must become a typed faults.ErrPanic query error, not
// a process crash.
//
// Every goroutine launched in internal/core, internal/engine and
// internal/rawfile must route panics into the faults taxonomy: the launched
// function (literal or same-package declaration) needs a top-level deferred
// recover that converts the panic value via the faults package
// (faults.Panicked / faults.ErrPanic). Goroutines launching functions the
// analyzer cannot see into are flagged too — a naked goroutine in a scan
// path is exactly how a user-predicate panic escapes containment.
package panicroute

import (
	"go/ast"
	"go/types"

	"nodb/internal/analysis/nodbvet"
)

// RoutesFact marks a function whose body opens with a deferred recover
// that routes panics into the faults taxonomy: safe to launch directly.
// Every module package exports it, so checked packages may launch
// imported carriers without re-wrapping them.
const RoutesFact = "panicroute.routes"

// Packages lists the package names whose goroutines are checked.
var Packages = map[string]bool{"core": true, "engine": true, "rawfile": true}

// Analyzer is the panicroute check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "panicroute",
	Directive: "panicroute-ok",
	Doc: "every goroutine launched in scan packages (core, engine, rawfile) must carry a top-level " +
		"deferred recover that converts panics via the faults taxonomy (faults.Panicked/ErrPanic), " +
		"so a panicking worker fails the query instead of the process",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	g := nodbvet.BuildCallGraph(pass)

	// Every package exports the routing blessing for its contained
	// functions, so checked packages can launch them directly.
	for fn, decl := range g.Decls() {
		if hasFaultsRecover(pass, decl.Body) {
			pass.Out.AddFunc(nodbvet.FuncID(fn), RoutesFact)
		}
	}

	if !Packages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(pass, g, gs)
			return true
		})
	}
	return nil
}

func checkGoStmt(pass *nodbvet.Pass, g *nodbvet.CallGraph, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		// go p.worker() / go splitter(): resolve the launched declaration
		// when it lives in this package.
		var id *ast.Ident
		switch fun := fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		}
		if id != nil {
			if callee, ok := pass.TypesInfo.Uses[id].(*types.Func); ok {
				if decl, ok := g.Decl(callee); ok {
					body = decl.Body
				} else if pass.Deps.FuncHas(nodbvet.FuncID(callee), RoutesFact) {
					return // imported function blessed by its own package's analysis
				}
			}
		}
	}
	if body == nil {
		pass.Reportf(gs.Pos(),
			"goroutine launches a function outside this package with no panicroute.routes fact; "+
				"panics on it will not reach the faults taxonomy — give the callee a top-level "+
				"deferred faults recover, wrap the launch in a literal with one, or suppress with "+
				"//nodbvet:panicroute-ok <why>")
		return
	}
	if hasFaultsRecover(pass, body) {
		return
	}
	pass.Reportf(gs.Pos(),
		"goroutine has no top-level deferred recover routing panics into the faults taxonomy; "+
			"a panic here crashes the process — add `defer func() { if rec := recover(); ... "+
			"faults.Panicked(...) }()` or suppress with //nodbvet:panicroute-ok <why>")
}

// hasFaultsRecover reports whether body has a top-level deferred function
// literal that both calls recover() and mentions the faults package.
func hasFaultsRecover(pass *nodbvet.Pass, body *ast.BlockStmt) bool {
	for _, stmt := range body.List {
		def, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		lit, ok := def.Call.Fun.(*ast.FuncLit)
		if !ok {
			continue
		}
		callsRecover, usesFaults := false, false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "recover" &&
					pass.TypesInfo.Uses[id] == types.Universe.Lookup("recover") {
					callsRecover = true
				}
			case *ast.Ident:
				if pkgName, ok := pass.TypesInfo.Uses[n].(*types.PkgName); ok &&
					pkgName.Imported().Path() == "nodb/internal/faults" {
					usesFaults = true
				}
			}
			return true
		})
		if callsRecover && usesFaults {
			return true
		}
	}
	return false
}
