// Dep fixture for floatdet: RunningMean exports the floatdet.accum fact
// (it keeps a float running total); PairwiseSum is recursion-structured
// and accumulation-free at statement level, so it stays clean.
package mathutil

// RunningMean keeps running float state: fact exported.
func RunningMean(vals []float64) float64 {
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// RunningIndirect taints transitively.
func RunningIndirect(vals []float64) float64 {
	return RunningMean(vals)
}

// Scale has no self-referential accumulation: clean.
func Scale(vals []float64, k float64) []float64 {
	out := make([]float64, len(vals))
	for i, v := range vals {
		out[i] = v * k
	}
	return out
}
