// Fixture under test for the floatdet analyzer. Package expr, so
// Step/Merge/Result root the sanctioned accumulation scope. Dep:
// mathutil (exports floatdet.accum for its running-total helpers).
package expr

import "mathutil"

type sumAgg struct {
	sum   float64
	count int64
}

// Step is sanctioned: per-chunk folds run in pinned order.
func (s *sumAgg) Step(v float64) {
	s.sum += v
	s.count++
}

// Merge is sanctioned: the commit path merges partials in file order.
func (s *sumAgg) Merge(o *sumAgg) {
	s.fold(o)
}

// fold is reachable from Merge: sanctioned too.
func (s *sumAgg) fold(o *sumAgg) {
	s.sum += o.sum
	s.count += o.count
}

// Result is sanctioned.
func (s *sumAgg) Result() float64 {
	return s.sum / float64(s.count)
}

// estimate keeps a running float total outside any sanctioned scope.
func estimate(vals []float64) float64 {
	total := 0.0
	for _, v := range vals {
		total += v // want `float accumulation in estimate outside the ordered-merge scope`
	}
	return total
}

// selfAssign uses the x = x + y spelling: same hazard.
func selfAssign(vals []float64) float64 {
	var total float64
	for _, v := range vals {
		total = total + v // want `float accumulation in selfAssign outside the ordered-merge scope`
	}
	return total
}

// scaleDown compounds with *=: still order-sensitive.
func scaleDown(x float32, steps int) float32 {
	for i := 0; i < steps; i++ {
		x *= 0.5 // want `float accumulation in scaleDown outside the ordered-merge scope`
	}
	return x
}

// intCounter accumulates integers: associative, clean.
func intCounter(vals []int) int {
	n := 0
	for range vals {
		n++
	}
	return n
}

// callsCarrier reaches the accumulation only through mathutil's fact.
func callsCarrier(vals []float64) float64 {
	return mathutil.RunningMean(vals) // want `call to mathutil\.RunningMean accumulates floats`
}

// callsCarrierIndirect consumes the transitive taint.
func callsCarrierIndirect(vals []float64) float64 {
	return mathutil.RunningIndirect(vals) // want `call to mathutil\.RunningIndirect accumulates floats`
}

// avgAgg.Merge is sanctioned: calling a float-accumulating helper from
// Merge scope is exactly where accumulation belongs.
type avgAgg struct {
	sum float64
}

func (a *avgAgg) Merge(vals []float64) {
	a.sum += mathutil.RunningMean(vals) * float64(len(vals))
}

// cleanHelper calls the accumulation-free dep function.
func cleanHelper(vals []float64) []float64 {
	return mathutil.Scale(vals, 2)
}

// justified keeps an error-bound estimate; the suppression settles it and
// stops the fact.
func justified(vals []float64) float64 {
	bound := 0.0
	for _, v := range vals {
		//nodbvet:floatdet-ok fixture: monitoring-only estimate, never compared bitwise
		bound += v * v
	}
	return bound
}

// callsJustified stays clean: justified exported no fact.
func callsJustified(vals []float64) float64 {
	return justified(vals)
}
