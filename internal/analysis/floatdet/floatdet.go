// Package floatdet protects the bitwise SUM/AVG parity contract: float
// addition is not associative, so the engine confines float accumulation
// to the scopes whose evaluation order is pinned — aggregate Step/Merge/
// Result in expr (per-chunk folds and the file-order merge) and the
// ordered-commit paths in core/engine. A running float total anywhere
// else picks up scheduling order and breaks the byte-identical-at-any-
// parallelism differential tests.
//
// Accumulation is recognized syntactically: op-assign (+= -= *= /=) on a
// float, and the x = x + y self-reference form. The check is
// cross-package through the "floatdet.accum" fact: a function anywhere in
// the module that accumulates floats (transitively) exports it, and a
// call from an unsanctioned scope in the checked packages is flagged.
package floatdet

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"nodb/internal/analysis/nodbvet"
)

// AccumFact marks a function that (transitively) accumulates floats
// outside a sanctioned ordered scope.
const AccumFact = "floatdet.accum"

// Roots names, per checked package, the sanctioned accumulation scopes:
// everything reachable from them has pinned evaluation order.
var Roots = map[string]map[string]bool{
	"expr":   {"Step": true, "Merge": true, "Result": true},
	"core":   {"commit": true, "mergePartials": true, "DrainAgg": true},
	"engine": {"Next": true, "NextBatch": true},
}

// Analyzer is the floatdet check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "floatdet",
	Directive: "floatdet-ok",
	Doc: "float accumulation outside Aggregator Step/Merge/Result and the ordered-commit paths is " +
		"flagged: float addition is not associative, so an unordered running total leaks the " +
		"parallel schedule into SUM/AVG bits",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	g := nodbvet.BuildCallGraph(pass)
	var allowed map[*types.Func]bool
	roots, checked := Roots[pass.Pkg.Name()]
	if checked {
		allowed = g.ReachableFrom(roots)
	}

	// Direct accumulation sites per declared function.
	direct := map[*types.Func][]token.Pos{}
	for fn, decl := range g.Decls() {
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if pos, ok := accumPos(pass, n); ok {
				direct[fn] = append(direct[fn], pos)
			}
			return true
		})
	}

	// Report: direct accumulation and fact-carrying calls from
	// unsanctioned functions of the checked packages.
	if checked {
		type finding struct {
			pos token.Pos
			msg string
		}
		var found []finding
		for fn, decl := range g.Decls() {
			if allowed[fn] {
				continue
			}
			for _, pos := range direct[fn] {
				found = append(found, finding{pos,
					"float accumulation in " + fn.Name() + " outside the ordered-merge scope; float " +
						"addition is not associative, so the accumulation order leaks into SUM/AVG bits — " +
						"move it into Step/Merge or the ordered-commit path, or suppress with " +
						"//nodbvet:floatdet-ok <why>"})
			}
			_ = decl
			for _, site := range g.Sites(fn) {
				if _, declared := g.Decl(site.Callee); declared {
					continue // local accumulation reports at its own site
				}
				if pass.Deps.FuncHas(nodbvet.FuncID(site.Callee), AccumFact) {
					found = append(found, finding{site.Pos,
						"call to " + nodbvet.ShortName(site.Callee) + " accumulates floats " +
							"(floatdet.accum fact) outside the ordered-merge scope — move the call into " +
							"Step/Merge or the ordered-commit path, or suppress with //nodbvet:floatdet-ok <why>"})
				}
			}
		}
		sort.Slice(found, func(i, j int) bool { return found[i].pos < found[j].pos })
		for _, f := range found {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}

	// Facts: unsanctioned functions with unsuppressed direct accumulation,
	// closed over local calls and imported carriers. Sanctioned functions
	// export nothing — they ARE the blessed scope.
	tainted := map[*types.Func]bool{}
	for fn, sites := range direct {
		if allowed[fn] {
			continue
		}
		for _, pos := range sites {
			if !pass.SuppressedAt(pos) {
				tainted[fn] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range g.Decls() {
			if tainted[fn] || allowed[fn] {
				continue
			}
			for _, site := range g.Sites(fn) {
				if tainted[site.Callee] {
					tainted[fn] = true
					changed = true
					break
				}
				if _, declared := g.Decl(site.Callee); !declared &&
					pass.Deps.FuncHas(nodbvet.FuncID(site.Callee), AccumFact) &&
					!pass.SuppressedAt(site.Pos) {
					tainted[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn := range tainted {
		pass.Out.AddFunc(nodbvet.FuncID(fn), AccumFact)
	}
	return nil
}

// accumPos recognizes one float accumulation statement.
func accumPos(pass *nodbvet.Pass, n ast.Node) (token.Pos, bool) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return token.NoPos, false
		}
		if !isFloat(pass, n.Lhs[0]) {
			return token.NoPos, false
		}
		switch n.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			return n.TokPos, true
		case token.ASSIGN:
			// x = x + y (or y + x): the self-reference running-total form.
			bin, ok := n.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return token.NoPos, false
			}
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return token.NoPos, false
			}
			lhs := types.ExprString(n.Lhs[0])
			if types.ExprString(bin.X) == lhs || types.ExprString(bin.Y) == lhs {
				return n.TokPos, true
			}
		}
	case *ast.IncDecStmt:
		if isFloat(pass, n.X) {
			return n.TokPos, true
		}
	}
	return token.NoPos, false
}

func isFloat(pass *nodbvet.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
