package floatdet_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/floatdet"
)

func TestFloatdet(t *testing.T) {
	analysistest.Run(t, floatdet.Analyzer, "testdata/expr", "testdata/mathutil")
}
