// Package ctxloop enforces the PR 3 cancellation contract: loops that pull
// bytes or pages from storage must probe for cancellation at a bounded
// interval, so QueryContext cancellation takes effect within one chunk or
// page of work.
//
// The engine's contract puts the probes at the leaves (see engine.ctxDone):
// blocking operators pull from leaf scans, so a leaf I/O loop without a
// probe is where cancellation latency becomes unbounded. In internal/core
// and internal/engine, any for/range loop whose body performs leaf I/O
// (ReadPage, Fetch, NextChunk, ReadChunkAt, ReadAt) must also contain a
// cancellation probe: a ctxDone/ctxErr helper call, a ctx.Done()/ctx.Err()
// call, or a select with a receive case (the pipeline's done-channel
// pattern).
package ctxloop

import (
	"go/ast"

	"nodb/internal/analysis/nodbvet"
)

// Packages lists the package names whose loops are checked.
var Packages = map[string]bool{"core": true, "engine": true}

// ioCalls are the leaf I/O method names that make a loop a scan loop.
var ioCalls = map[string]bool{
	"ReadPage": true, "Fetch": true, "NextChunk": true, "ReadChunkAt": true, "ReadAt": true,
}

// probeCalls are the cancellation probes the contract accepts.
var probeCalls = map[string]bool{
	"ctxDone": true, "ctxErr": true, "Done": true, "Err": true,
}

// Analyzer is the ctxloop check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "ctxloop",
	Directive: "ctxloop-ok",
	Doc: "leaf I/O loops in core and engine (ReadPage/Fetch/NextChunk/ReadChunkAt/ReadAt in the " +
		"body) must probe cancellation each iteration (ctxDone/ctxErr/ctx.Done/ctx.Err or a " +
		"select with a receive), keeping cancellation latency bounded by one chunk or page",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	if !Packages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.ForStmt:
				body = n.Body
			case *ast.RangeStmt:
				body = n.Body
			default:
				return true
			}
			io := ioCallIn(body)
			if io == "" || hasProbe(body) {
				return true
			}
			pass.Reportf(n.Pos(),
				"loop performs leaf I/O (%s) with no cancellation probe; check ctx.Done()/ctxDone "+
					"at a bounded interval so cancellation latency stays within one chunk/page, or "+
					"suppress with //nodbvet:ctxloop-ok <why>", io)
			return true
		})
	}
	return nil
}

// ioCallIn returns the name of a leaf I/O call made directly in the loop
// body (nested function literals excluded — their loops are checked where
// they run), or "".
func ioCallIn(body *ast.BlockStmt) string {
	name := ""
	inspectSkippingFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || name != "" {
			return
		}
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			if ioCalls[fun.Sel.Name] {
				name = fun.Sel.Name
			}
		case *ast.Ident:
			if ioCalls[fun.Name] {
				name = fun.Name
			}
		}
	})
	return name
}

// hasProbe reports whether the loop body contains an accepted cancellation
// probe.
func hasProbe(body *ast.BlockStmt) bool {
	found := false
	inspectSkippingFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				if probeCalls[fun.Sel.Name] {
					found = true
				}
			case *ast.Ident:
				if probeCalls[fun.Name] {
					found = true
				}
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				if comm, ok := clause.(*ast.CommClause); ok && comm.Comm != nil {
					if _, isSend := comm.Comm.(*ast.SendStmt); !isSend {
						found = true // receive case: done-channel pattern
					}
				}
			}
		}
	})
	return found
}

// inspectSkippingFuncLits walks n but does not descend into function
// literals.
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
