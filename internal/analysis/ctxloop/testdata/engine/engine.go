// Fixture for the ctxloop analyzer. The package is named engine so its
// leaf-I/O loops are checked for cancellation probes.
package engine

import "context"

type pager interface {
	ReadPage(int) ([]byte, error)
}

type op struct {
	p    pager
	ctx  context.Context
	page int
}

// drainUnchecked pulls pages forever with no cancellation probe.
func (o *op) drainUnchecked() error {
	for { // want `loop performs leaf I/O`
		if _, err := o.p.ReadPage(o.page); err != nil {
			return err
		}
		o.page++
	}
}

// drainPolled probes ctx.Done() each iteration: clean.
func (o *op) drainPolled() error {
	for {
		select {
		case <-o.ctx.Done():
			return o.ctx.Err()
		default:
		}
		if _, err := o.p.ReadPage(o.page); err != nil {
			return err
		}
		o.page++
	}
}

func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// drainHelper uses the engine's leaf-check helper: clean.
func (o *op) drainHelper() error {
	for {
		if err := ctxDone(o.ctx); err != nil {
			return err
		}
		if _, err := o.p.ReadPage(o.page); err != nil {
			return err
		}
		o.page++
	}
}

// drainBounded is justified: iteration count is a small constant.
func (o *op) drainBounded() error {
	//nodbvet:ctxloop-ok bounded to two pages by construction, latency cannot grow with input
	for i := 0; i < 2; i++ {
		if _, err := o.p.ReadPage(i); err != nil {
			return err
		}
	}
	return nil
}

// spin does no leaf I/O: out of scope.
func (o *op) spin() int {
	n := 0
	for i := 0; i < 100; i++ {
		n += i
	}
	return n
}
