package ctxloop_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/ctxloop"
)

func TestCtxloop(t *testing.T) {
	analysistest.Run(t, ctxloop.Analyzer, "testdata/engine")
}
