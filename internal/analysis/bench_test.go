package analysis_test

import (
	"os"
	"path/filepath"
	"testing"

	"nodb/internal/analysis"
	"nodb/internal/analysis/loadpkg"
	"nodb/internal/analysis/nodbvet"
)

// benchDirs is a dependency-ordered slice of the engine packages the suite
// spends its time on in a full-tree run: the scan core and its leaf
// dependencies, the executor above it, and the public API at the root.
// Each entry is a directory relative to the module root; facts exported by
// earlier packages feed later ones, so the benchmark exercises the same
// cross-package propagation the go vet protocol does.
var benchDirs = []string{
	"internal/faults",
	"internal/metrics",
	"internal/value",
	"internal/expr",
	"internal/rawfile",
	"internal/posmap",
	"internal/rawcache",
	"internal/core",
	"internal/engine",
	"internal/planner",
	".",
}

// BenchmarkNodbvetSuite measures one full analyzer-suite pass over the
// engine's hot packages — the pre-commit latency a `go vet -vettool`
// run pays per package, minus the go command's own build-graph overhead.
func BenchmarkNodbvetSuite(b *testing.B) {
	root, err := moduleRoot()
	if err != nil {
		b.Fatal(err)
	}
	// One go list round trip warms the export cache for the whole tree.
	if err := loadpkg.Prefetch("nodb/..."); err != nil {
		b.Fatal(err)
	}
	// Parse and type-check once, outside the timed loop: the benchmark
	// isolates analysis time, which is what adding an analyzer changes.
	pkgs := make([]*loadpkg.Package, len(benchDirs))
	for i, dir := range benchDirs {
		p, err := loadpkg.Dir(filepath.Join(root, dir))
		if err != nil {
			b.Fatalf("loading %s: %v", dir, err)
		}
		pkgs[i] = p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts := nodbvet.NewFactSet()
		var diags int
		for j, p := range pkgs {
			ds, out, err := analysis.RunSuite(p.Fset, p.Files, p.Types, p.Info, facts)
			if err != nil {
				b.Fatalf("suite over %s: %v", benchDirs[j], err)
			}
			facts.Merge(out)
			diags += len(ds)
		}
		if diags != 0 {
			b.Fatalf("suite found %d diagnostics on a clean tree", diags)
		}
	}
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
