package analysis_test

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"testing"

	"nodb/internal/analysis"
	"nodb/internal/analysis/loadpkg"
	"nodb/internal/analysis/nodbvet"
)

// benchDirs is a dependency-ordered slice of the engine packages the suite
// spends its time on in a full-tree run: the scan core and its leaf
// dependencies, the executor above it, and the public API at the root.
// Each entry is a directory relative to the module root; facts exported by
// earlier packages feed later ones, so the benchmark exercises the same
// cross-package propagation the go vet protocol does.
var benchDirs = []string{
	"internal/faults",
	"internal/metrics",
	"internal/value",
	"internal/expr",
	"internal/rawfile",
	"internal/posmap",
	"internal/rawcache",
	"internal/core",
	"internal/engine",
	"internal/planner",
	".",
}

// loadBenchCorpus parses and type-checks the bench packages once, outside
// any timed loop: the benchmarks isolate analysis time, which is what
// adding an analyzer (or CFG construction) changes.
func loadBenchCorpus(b *testing.B) []*loadpkg.Package {
	b.Helper()
	root, err := moduleRoot()
	if err != nil {
		b.Fatal(err)
	}
	// One go list round trip warms the export cache for the whole tree.
	if err := loadpkg.Prefetch("nodb/..."); err != nil {
		b.Fatal(err)
	}
	pkgs := make([]*loadpkg.Package, len(benchDirs))
	for i, dir := range benchDirs {
		p, err := loadpkg.Dir(filepath.Join(root, dir))
		if err != nil {
			b.Fatalf("loading %s: %v", dir, err)
		}
		pkgs[i] = p
	}
	return pkgs
}

// BenchmarkNodbvetSuite measures one full analyzer-suite pass over the
// engine's hot packages — the pre-commit latency a `go vet -vettool`
// run pays per package, minus the go command's own build-graph overhead.
func BenchmarkNodbvetSuite(b *testing.B) {
	pkgs := loadBenchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts := nodbvet.NewFactSet()
		var diags int
		for j, p := range pkgs {
			ds, out, err := analysis.RunSuite(p.Fset, p.Files, p.Types, p.Info, facts)
			if err != nil {
				b.Fatalf("suite over %s: %v", benchDirs[j], err)
			}
			facts.Merge(out)
			diags += len(ds)
		}
		if diags != 0 {
			b.Fatalf("suite found %d diagnostics on a clean tree", diags)
		}
	}
}

// BenchmarkBuildCFG lowers every function body of the bench corpus into
// basic blocks — the fixed cost each path-sensitive analyzer pays per
// function before its dataflow pass runs.
func BenchmarkBuildCFG(b *testing.B) {
	pkgs := loadBenchCorpus(b)
	type fnBody struct {
		body *ast.BlockStmt
		info *types.Info
	}
	var fns []fnBody
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					fns = append(fns, fnBody{fd.Body, p.Info})
				}
			}
		}
	}
	b.ResetTimer()
	var blocks int
	for i := 0; i < b.N; i++ {
		blocks = 0
		for _, fn := range fns {
			cfg := nodbvet.BuildCFG(fn.body, fn.info)
			blocks += len(cfg.Blocks)
		}
	}
	b.ReportMetric(float64(len(fns)), "funcs")
	b.ReportMetric(float64(blocks), "blocks")
}

// BenchmarkDataflowSolve runs the generic worklist solver to a fixpoint
// over every corpus CFG with a minimal forward problem, isolating the
// solver's iteration overhead from any analyzer's transfer logic.
func BenchmarkDataflowSolve(b *testing.B) {
	pkgs := loadBenchCorpus(b)
	var cfgs []*nodbvet.CFG
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					cfgs = append(cfgs, nodbvet.BuildCFG(fd.Body, p.Info))
				}
			}
		}
	}
	// Saturating node-path length: joins take the max, transfers add the
	// block's node count, capped so loops reach the fixpoint instead of
	// counting forever. Monotone over a finite lattice, and every block is
	// visited at least once per solve.
	const cap = 1 << 6
	problem := nodbvet.FlowProblem[int]{
		Boundary: 0,
		Bottom:   -1,
		Transfer: func(blk *nodbvet.Block, in int) int {
			if out := in + len(blk.Nodes); out < cap {
				return out
			}
			return cap
		},
		Join: func(a, c int) int {
			if a > c {
				return a
			}
			return c
		},
		Equal: func(a, c int) bool { return a == c },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			nodbvet.Solve(cfg, problem)
		}
	}
	b.ReportMetric(float64(len(cfgs)), "cfgs")
}

// moduleRoot walks up from the test's working directory to the go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
