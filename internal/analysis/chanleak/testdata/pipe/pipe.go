// Dep fixture for chanleak: BlockingSend exports the chanleak.blocks
// fact; GuardedSend does not.
package pipe

// BlockingSend performs a bare send: callers on goroutines are flagged
// through the exported fact.
func BlockingSend(ch chan int, v int) {
	ch <- v
}

// BlockingIndirect only calls BlockingSend; the taint is transitive.
func BlockingIndirect(ch chan int) {
	BlockingSend(ch, 0)
}

// GuardedSend selects on done: no fact, callers stay clean.
func GuardedSend(ch chan int, done chan struct{}, v int) {
	select {
	case ch <- v:
	case <-done:
	}
}
