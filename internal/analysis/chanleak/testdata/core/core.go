// Fixture under test for the chanleak analyzer. Package core, so
// goroutine channel discipline is enforced. Dep: pipe (exports
// chanleak.blocks for its bare-send helpers).
package core

import (
	"context"

	"pipe"
)

type pump struct {
	out  chan int
	done chan struct{}
}

// launch spawns the goroutines under test.
func (p *pump) launch(ctx context.Context, ch chan int) {
	go func() {
		ch <- 1 // want `goroutine sends on a channel without selecting on ctx/abort`
	}()
	go func() {
		<-ch // want `goroutine receives from a channel without selecting on ctx/abort`
	}()
	go func() { // guarded send: clean.
		select {
		case ch <- 2:
		case <-p.done:
		}
	}()
	go func() { // default-guarded: clean.
		select {
		case ch <- 3:
		default:
		}
	}()
	go func() { // unguarded select: both cases can block forever.
		select {
		case ch <- 4: // want `select has no default or ctx/abort case: the send can still block forever`
		case v := <-ch: // want `select has no default or ctx/abort case: the receive can still block forever`
			_ = v
		}
	}()
	go func() { // ctx.Done-guarded: clean.
		select {
		case ch <- 5:
		case <-ctx.Done():
		}
	}()
	go func() { // receiving the abort signal itself is the guard: clean.
		<-p.done
	}()
	go func() { // close-terminated drain: clean.
		for v := range ch {
			_ = v
		}
	}()
	go func() {
		pipe.BlockingSend(ch, 6) // want `call to pipe\.BlockingSend performs an unguarded channel operation`
	}()
	go func() {
		pipe.BlockingIndirect(ch) // want `call to pipe\.BlockingIndirect performs an unguarded channel operation`
	}()
	go func() { // guarded dep helper: clean.
		pipe.GuardedSend(ch, p.done, 7)
	}()
	go func() {
		//nodbvet:chanleak-ok fixture: consumer provably outlives this send (joined before close)
		ch <- 8
	}()
	go p.run()
	go p.runGuarded()
	close(p.out)
}

// run was launched with go: its helper chain is goroutine scope.
func (p *pump) run() {
	p.emit(9)
}

func (p *pump) emit(v int) {
	p.out <- v // want `goroutine sends on a channel without selecting on ctx/abort`
}

// runGuarded shows the sanctioned worker shape.
func (p *pump) runGuarded() {
	select {
	case p.out <- 10:
	case <-p.done:
	}
}

// synchronous is never launched on a goroutine: a blocking send here is a
// plain synchronous handoff, not a leak — clean locally (it would export
// the blocks fact for cross-package callers).
func (p *pump) synchronous(v int) {
	p.out <- v
}
