package chanleak_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/chanleak"
)

func TestChanleak(t *testing.T) {
	analysistest.Run(t, chanleak.Analyzer, "testdata/core", "testdata/pipe")
}
