// Package chanleak enforces the pipeline-shutdown contract: a goroutine
// in the scan packages (core, engine, rawfile) must never block forever
// on a channel. Every send or receive reachable on a goroutine must
// either sit in a select with a default or an abort-style case (<-done,
// <-ctx.Done(), ...), receive from an abort-style channel directly, or
// drain a close-terminated channel with range. A bare `ch <- v` on a
// worker is exactly the deadlock class PRs 3 and 6 fixed by hand: the
// consumer errors out, stops receiving, and the worker pins its chunk
// buffer forever.
//
// The check is cross-package through the "chanleak.blocks" fact: a
// function anywhere in the module that performs an unguarded channel
// operation (transitively) exports it, and a goroutine-scope call to a
// carrier is flagged at the call site.
package chanleak

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"nodb/internal/analysis/nodbvet"
)

// BlocksFact marks a function that may block on an unguarded channel op.
const BlocksFact = "chanleak.blocks"

// Packages lists the package names whose goroutines are checked.
var Packages = map[string]bool{"core": true, "engine": true, "rawfile": true}

// Analyzer is the chanleak check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "chanleak",
	Directive: "chanleak-ok",
	Doc: "goroutine channel sends/receives in the scan packages must select on ctx/abort (or use a " +
		"default case, an abort-named channel, or range over a close-terminated channel); a bare " +
		"blocking op leaks the goroutine when the pipeline cancels",
	Run: run,
}

// abortWords are the name fragments that mark a channel as an
// abort/completion signal; receiving from one IS the guard.
var abortWords = []string{"done", "abort", "quit", "stop", "cancel", "close", "ctx"}

type event struct {
	pos    token.Pos
	msg    string
	direct bool // reached without crossing a `go func(){...}` boundary
	launch bool // reached inside a launched literal (always goroutine context)
}

type checker struct {
	pass   *nodbvet.Pass
	graph  *nodbvet.CallGraph
	scope  map[*types.Func]bool // declared functions running on goroutines
	events map[*types.Func][]event
	cur    *types.Func // function currently being walked
}

func run(pass *nodbvet.Pass) error {
	c := &checker{
		pass:   pass,
		graph:  nodbvet.BuildCallGraph(pass),
		scope:  map[*types.Func]bool{},
		events: map[*types.Func][]event{},
	}
	c.computeScope()
	for fn, decl := range c.graph.Decls() {
		c.cur = fn
		c.stmts(decl.Body.List, c.scope[fn], false)
	}

	// Report: events in goroutine context, in the checked packages.
	if Packages[pass.Pkg.Name()] {
		var flagged []event
		for fn, evs := range c.events {
			for _, e := range evs {
				if e.launch || (c.scope[fn] && e.direct) {
					flagged = append(flagged, e)
				}
			}
		}
		sort.Slice(flagged, func(i, j int) bool { return flagged[i].pos < flagged[j].pos })
		for _, e := range flagged {
			pass.Reportf(e.pos, "%s", e.msg)
		}
	}

	// Facts: a function with an unsuppressed direct event blocks; so does
	// one that calls a blocking local function or imported carrier.
	tainted := map[*types.Func]bool{}
	for fn, evs := range c.events {
		for _, e := range evs {
			if e.direct && !pass.SuppressedAt(e.pos) {
				tainted[fn] = true
				break
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn := range c.graph.Decls() {
			if tainted[fn] {
				continue
			}
			for _, site := range c.graph.Sites(fn) {
				if tainted[site.Callee] {
					tainted[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn := range tainted {
		pass.Out.AddFunc(nodbvet.FuncID(fn), BlocksFact)
	}
	return nil
}

// computeScope seeds the goroutine scope with every locally declared
// function launched by a go statement, then closes it over same-package
// calls: a helper called from a worker runs on the worker's goroutine.
func (c *checker) computeScope() {
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var id *ast.Ident
			switch fun := gs.Call.Fun.(type) {
			case *ast.Ident:
				id = fun
			case *ast.SelectorExpr:
				id = fun.Sel
			}
			if id != nil {
				if callee, ok := c.pass.TypesInfo.Uses[id].(*types.Func); ok {
					if _, declared := c.graph.Decl(callee); declared {
						c.scope[callee] = true
					}
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for fn := range c.scope {
			for _, site := range c.graph.Sites(fn) {
				if _, declared := c.graph.Decl(site.Callee); declared && !c.scope[site.Callee] {
					c.scope[site.Callee] = true
					changed = true
				}
			}
		}
	}
}

func (c *checker) record(pos token.Pos, msg string, inGo, launched bool) {
	c.events[c.cur] = append(c.events[c.cur], event{pos: pos, msg: msg, direct: !launched, launch: launched && inGo})
}

// stmts walks a statement list. inGo: the code runs on a goroutine (the
// enclosing declared function is goroutine scope, or a `go func` literal
// was crossed). launched: a go-literal boundary was crossed inside this
// function, so events belong to the spawned goroutine, not to callers of
// the function.
func (c *checker) stmts(list []ast.Stmt, inGo, launched bool) {
	for _, s := range list {
		c.stmt(s, inGo, launched)
	}
}

func (c *checker) stmt(s ast.Stmt, inGo, launched bool) {
	switch s := s.(type) {
	case *ast.SendStmt:
		c.record(s.Arrow, "goroutine sends on a channel without selecting on ctx/abort; if the "+
			"receiver has quit, this goroutine leaks — wrap in select { case ch <- v: case <-done: }, "+
			"or suppress with //nodbvet:chanleak-ok <why>", inGo, launched)
		c.expr(s.Value, inGo, launched)
	case *ast.SelectStmt:
		guarded := selectGuarded(c.pass, s)
		for _, cl := range s.Body.List {
			cc, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if !guarded && cc.Comm != nil {
				switch comm := cc.Comm.(type) {
				case *ast.SendStmt:
					c.record(comm.Arrow, "select has no default or ctx/abort case: the send can still "+
						"block forever — add one, or suppress with //nodbvet:chanleak-ok <why>", inGo, launched)
				default:
					if pos, ok := commRecvPos(c.pass, cc.Comm); ok {
						c.record(pos, "select has no default or ctx/abort case: the receive can still "+
							"block forever — add one, or suppress with //nodbvet:chanleak-ok <why>", inGo, launched)
					}
				}
			}
			c.stmts(cc.Body, inGo, launched)
		}
	case *ast.RangeStmt:
		// range over a channel terminates via close: the blessed drain.
		c.stmts(s.Body.List, inGo, launched)
	case *ast.GoStmt:
		for _, arg := range s.Call.Args {
			c.expr(arg, inGo, launched)
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, true, true)
		}
	case *ast.ExprStmt:
		c.expr(s.X, inGo, launched)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, inGo, launched)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, inGo, launched)
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, inGo, launched)
		}
		c.expr(s.Cond, inGo, launched)
		c.stmts(s.Body.List, inGo, launched)
		if s.Else != nil {
			c.stmt(s.Else, inGo, launched)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init, inGo, launched)
		}
		if s.Cond != nil {
			c.expr(s.Cond, inGo, launched)
		}
		if s.Post != nil {
			c.stmt(s.Post, inGo, launched)
		}
		c.stmts(s.Body.List, inGo, launched)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, inGo, launched)
		}
		if s.Tag != nil {
			c.expr(s.Tag, inGo, launched)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, inGo, launched)
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, inGo, launched)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, inGo, launched)
			}
		}
	case *ast.BlockStmt:
		c.stmts(s.List, inGo, launched)
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, inGo, launched)
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(lit.Body.List, inGo, launched)
		} else {
			c.expr(s.Call, inGo, launched)
		}
	case *ast.IncDecStmt:
		c.expr(s.X, inGo, launched)
	}
}

// expr finds receives and blocking-carrier calls inside an expression.
func (c *checker) expr(e ast.Expr, inGo, launched bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, inGo, launched)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !abortChan(c.pass, n.X) {
				c.record(n.OpPos, "goroutine receives from a channel without selecting on ctx/abort; "+
					"if the sender has quit, this goroutine leaks — use select with a done case, range "+
					"over a close-terminated channel, or suppress with //nodbvet:chanleak-ok <why>", inGo, launched)
			}
		case *ast.CallExpr:
			if callee := calleeFunc(c.pass, n); callee != nil {
				if _, declared := c.graph.Decl(callee); !declared &&
					c.pass.Deps.FuncHas(nodbvet.FuncID(callee), BlocksFact) {
					c.record(n.Pos(), "call to "+nodbvet.ShortName(callee)+" performs an unguarded "+
						"channel operation (chanleak.blocks fact); on a goroutine this can leak — guard "+
						"the callee, or suppress with //nodbvet:chanleak-ok <why>", inGo, launched)
				}
			}
		}
		return true
	})
}

// selectGuarded reports whether a select cannot block forever: it has a
// default case, or one of its comm cases involves an abort-style channel.
func selectGuarded(pass *nodbvet.Pass, s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		if cc.Comm == nil {
			return true // default:
		}
		switch comm := cc.Comm.(type) {
		case *ast.SendStmt:
			if abortChan(pass, comm.Chan) {
				return true
			}
		case *ast.ExprStmt:
			if u, ok := comm.X.(*ast.UnaryExpr); ok && u.Op == token.ARROW && abortChan(pass, u.X) {
				return true
			}
		case *ast.AssignStmt:
			for _, r := range comm.Rhs {
				if u, ok := r.(*ast.UnaryExpr); ok && u.Op == token.ARROW && abortChan(pass, u.X) {
					return true
				}
			}
		}
	}
	return false
}

// commRecvPos extracts the receive position of a non-send comm clause.
func commRecvPos(pass *nodbvet.Pass, s ast.Stmt) (token.Pos, bool) {
	var u *ast.UnaryExpr
	switch s := s.(type) {
	case *ast.ExprStmt:
		u, _ = s.X.(*ast.UnaryExpr)
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if ue, ok := r.(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				u = ue
			}
		}
	}
	if u == nil || u.Op != token.ARROW || abortChan(pass, u.X) {
		return token.NoPos, false
	}
	return u.OpPos, true
}

// abortChan recognizes abort/completion channels: ctx.Done()-style calls,
// and channel expressions whose final name contains an abort word.
func abortChan(pass *nodbvet.Pass, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	case *ast.Ident:
		return hasAbortWord(e.Name)
	case *ast.SelectorExpr:
		return hasAbortWord(e.Sel.Name)
	}
	return false
}

func hasAbortWord(name string) bool {
	lower := strings.ToLower(name)
	for _, w := range abortWords {
		if strings.Contains(lower, w) {
			return true
		}
	}
	return false
}

func calleeFunc(pass *nodbvet.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	}
	if id == nil {
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
