// Package hotalloc keeps annotated per-row/per-chunk kernels allocation
// lean. The tokenize/convert tax the paper's adaptive structures amortize
// only shrinks if the hot loops themselves stay off the allocator, and the
// planned compiled-kernel work (ROADMAP: "Code Generation Techniques for
// Raw Data Processing") assumes kernels it can fuse without hidden
// allocations.
//
// Functions annotated //nodbvet:hotpath are checked for per-call
// allocation sources:
//
//   - fmt.Sprint/Sprintf/Sprintln/Errorf calls;
//   - interface boxing of ints, floats and bools (arguments passed to
//     interface-typed parameters, which heap-allocate the value);
//   - function literals capturing local variables (the closure and its
//     captures escape together);
//   - append growth into a slice declared in the function without a
//     capacity hint (no make with length/capacity), which reallocates as
//     it grows instead of reusing a sized buffer.
//
// Cold sub-paths inside a hot function (e.g. malformed-input reporting)
// carry //nodbvet:hotalloc-ok suppressions with a justification.
package hotalloc

import (
	"go/ast"
	"go/types"
	"strings"

	"nodb/internal/analysis/nodbvet"
)

// Analyzer is the hotalloc check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "hotalloc",
	Directive: "hotalloc-ok",
	Doc: "functions annotated //nodbvet:hotpath must not allocate per call: no fmt.Sprint*, no " +
		"interface boxing of numerics, no capturing closures, no unhinted append growth",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !nodbvet.FuncHasDirective(pass.Fset, f, fn, nodbvet.HotpathDirective) {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *nodbvet.Pass, fn *ast.FuncDecl) {
	unhinted := unhintedSlices(pass, fn)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, unhinted)
		case *ast.FuncLit:
			if captured := captures(pass, fn, n); len(captured) > 0 {
				pass.Reportf(n.Pos(),
					"hotpath closure captures %s; the closure and its captures escape and allocate "+
						"per call — hoist it or pass state explicitly (//nodbvet:hotalloc-ok to justify)",
					strings.Join(captured, ", "))
			}
		}
		return true
	})
}

func checkCall(pass *nodbvet.Pass, call *ast.CallExpr, unhinted map[*types.Var]bool) {
	// Builtin append into an unhinted locally-declared slice.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
		if dst, ok := call.Args[0].(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.ObjectOf(dst).(*types.Var); ok && unhinted[v] {
				pass.Reportf(call.Pos(),
					"hotpath append grows %s, declared without a capacity hint; preallocate with "+
						"make(len/cap) or reuse a sized buffer (//nodbvet:hotalloc-ok to justify)", dst.Name)
			}
		}
		return
	}

	// fmt.Sprint* / fmt.Errorf.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if pkgID, ok := sel.X.(*ast.Ident); ok {
			if pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok &&
				pkgName.Imported().Path() == "fmt" {
				switch sel.Sel.Name {
				case "Sprint", "Sprintf", "Sprintln", "Errorf":
					pass.Reportf(call.Pos(),
						"hotpath calls fmt.%s, which allocates per call; move formatting off the hot "+
							"path or append to a reused buffer (//nodbvet:hotalloc-ok to justify)",
						sel.Sel.Name)
					return // args are boxed by the same call; one report is enough
				}
			}
		}
	}

	// Interface boxing of numerics at call boundaries.
	sig := callSignature(pass, call)
	if sig == nil {
		return
	}
	for i, arg := range call.Args {
		p := paramType(sig, i)
		if p == nil {
			continue
		}
		if _, isIface := p.Underlying().(*types.Interface); !isIface {
			continue
		}
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok &&
			b.Info()&(types.IsInteger|types.IsFloat|types.IsBoolean) != 0 {
			pass.Reportf(arg.Pos(),
				"hotpath boxes a %s into an interface parameter, allocating per call; use a typed "+
					"variant or restructure the call (//nodbvet:hotalloc-ok to justify)", b.Name())
		}
	}
}

func callSignature(pass *nodbvet.Pass, call *ast.CallExpr) *types.Signature {
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// paramType returns the type of parameter i, unrolling variadics.
func paramType(sig *types.Signature, i int) types.Type {
	params := sig.Params()
	if params.Len() == 0 {
		return nil
	}
	if sig.Variadic() && i >= params.Len()-1 {
		if slice, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
			return slice.Elem()
		}
		return nil
	}
	if i >= params.Len() {
		return nil
	}
	return params.At(i).Type()
}

// captures lists local variables of fn that lit references, i.e. the
// closure's captured environment. Package-level objects and the literal's
// own locals do not count.
func captures(pass *nodbvet.Pass, fn *ast.FuncDecl, lit *ast.FuncLit) []string {
	var names []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		// Captured = declared inside fn but outside lit.
		if v.Pos() >= fn.Pos() && v.Pos() < fn.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	return names
}

// unhintedSlices finds slice variables declared in fn with no capacity
// hint: `var x []T`, `x := []T{}` or `x := []T(nil)`. A make with a
// length or capacity, an assignment from another expression (sub-slicing a
// reused buffer), parameters and fields are all considered hinted.
func unhintedSlices(pass *nodbvet.Pass, fn *ast.FuncDecl) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(id *ast.Ident, init ast.Expr) {
		v, ok := pass.TypesInfo.Defs[id].(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		if init == nil {
			out[v] = true // var x []T
			return
		}
		if lit, ok := init.(*ast.CompositeLit); ok && len(lit.Elts) == 0 {
			out[v] = true // x := []T{}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return true
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && i < len(n.Rhs) {
					mark(id, n.Rhs[i])
				}
			}
		case *ast.GenDecl:
			for _, spec := range n.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					var init ast.Expr
					if i < len(vs.Values) {
						init = vs.Values[i]
					}
					mark(id, init)
				}
			}
		}
		return true
	})
	return out
}
