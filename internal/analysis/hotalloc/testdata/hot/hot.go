// Fixture for the hotalloc analyzer. The package name is irrelevant: the
// analyzer fires only on functions annotated //nodbvet:hotpath.
package hot

import "fmt"

// render formats per element: flagged.
//
//nodbvet:hotpath
func render(vals []int64) string {
	out := ""
	for _, v := range vals {
		out = fmt.Sprintf("%s,%d", out, v) // want `calls fmt.Sprintf`
	}
	return out
}

func sink(v any) {}

// box passes numerics to an interface parameter: flagged.
//
//nodbvet:hotpath
func box(vals []int64) {
	for _, v := range vals {
		sink(v) // want `boxes a int64 into an interface parameter`
	}
}

// closure captures a local: the closure and its captures escape together.
//
//nodbvet:hotpath
func closure(vals []int64) func() int64 {
	total := int64(0)
	for _, v := range vals {
		total += v
	}
	f := func() int64 { // want `closure captures total`
		return total
	}
	return f
}

// gather grows an unhinted slice: flagged.
//
//nodbvet:hotpath
func gather(vals []int64) []int64 {
	var out []int64
	for _, v := range vals {
		out = append(out, v) // want `append grows out, declared without a capacity hint`
	}
	return out
}

// gatherHinted preallocates: clean.
//
//nodbvet:hotpath
func gatherHinted(vals []int64) []int64 {
	out := make([]int64, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
	}
	return out
}

// slow suppresses a cold sub-path with a justification: clean.
//
//nodbvet:hotpath
func slow(vals []int64) string {
	return fmt.Sprintf("%d values", len(vals)) //nodbvet:hotalloc-ok cold summary path, runs once per query not per row
}

// cold is not annotated: nothing is checked.
func cold() string { return fmt.Sprintf("%d", 1) }
