package hotalloc_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "testdata/hot")
}
