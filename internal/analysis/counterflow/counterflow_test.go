package counterflow_test

import (
	"testing"

	"nodb/internal/analysis/analysistest"
	"nodb/internal/analysis/counterflow"
)

func TestCounterflow(t *testing.T) {
	analysistest.Run(t, counterflow.Analyzer, "testdata/nodb", "testdata/metrics", "testdata/core")
}
