// Package counterflow audits the metrics plumbing end to end: every
// int64 counter field of metrics.Breakdown must be incremented somewhere
// in the analyzed tree AND read back out in the root package (where
// QueryStats mirrors the breakdown for users). A counter that nobody
// increments misreports the scan as doing no such work; one that is
// incremented but never surfaced is invisible effort — both are the PR-2
// HashAgg charging-bug class, now caught statically.
//
// Producer packages export the package-level "counterflow.increments"
// fact (the Breakdown fields they write); the check itself fires only in
// the root package (named nodb), where the full dependency cone's facts
// are in scope. At most two aggregate diagnostics are reported, anchored
// at the metrics import.
package counterflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"sort"
	"strings"

	"nodb/internal/analysis/nodbvet"
)

// IncrementsFact is the package fact listing written Breakdown fields.
const IncrementsFact = "counterflow.increments"

// Analyzer is the counterflow check.
var Analyzer = &nodbvet.Analyzer{
	Name:      "counterflow",
	Directive: "counterflow-ok",
	Doc: "every metrics.Breakdown int64 counter must be incremented somewhere in the tree and " +
		"surfaced through the root package's QueryStats; dead or unplumbed counters misreport " +
		"the scan (the HashAgg charging-bug class)",
	Run: run,
}

func run(pass *nodbvet.Pass) error {
	if pass.Pkg.Name() == "metrics" {
		return nil // Merge legitimately touches every field
	}

	// Classify every Breakdown-field selector in this package as a write
	// (assignment target, op-assign, inc/dec) or a read.
	writes := map[string]bool{}
	reads := map[string]bool{}
	writeSels := map[*ast.SelectorExpr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && breakdownField(pass, sel) != "" {
						writeSels[sel] = true
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := n.X.(*ast.SelectorExpr); ok && breakdownField(pass, sel) != "" {
					writeSels[sel] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := breakdownField(pass, sel)
			if field == "" {
				return true
			}
			if writeSels[sel] {
				writes[field] = true
			} else {
				reads[field] = true
			}
			return true
		})
	}

	// Producer side: publish what this package writes.
	if len(writes) > 0 {
		fields := make([]string, 0, len(writes))
		for f := range writes {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		pass.Out.AddPkg(pass.Pkg.Path(), IncrementsFact, fields...)
	}

	// Consumer side: only the root package sees the whole cone.
	if pass.Pkg.Name() != "nodb" {
		return nil
	}
	breakdown, importPos := findBreakdown(pass)
	if breakdown == nil {
		return nil
	}
	incremented := map[string]bool{}
	for f := range writes {
		incremented[f] = true
	}
	for _, f := range pass.Deps.PkgValues(IncrementsFact) {
		incremented[f] = true
	}
	var dead, unsurfaced []string
	st, ok := breakdown.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		field := st.Field(i)
		basic, isBasic := field.Type().Underlying().(*types.Basic)
		if !isBasic || basic.Kind() != types.Int64 {
			continue
		}
		if !incremented[field.Name()] {
			dead = append(dead, field.Name())
			continue
		}
		if !reads[field.Name()] {
			unsurfaced = append(unsurfaced, field.Name())
		}
	}
	sort.Strings(dead)
	sort.Strings(unsurfaced)
	if len(dead) > 0 {
		pass.Reportf(importPos,
			"metrics.Breakdown counters never incremented in any analyzed package: %s — a dead "+
				"counter reports the scan as doing no such work; wire it up or delete the field "+
				"(//nodbvet:counterflow-ok <why> to suppress)", strings.Join(dead, ", "))
	}
	if len(unsurfaced) > 0 {
		pass.Reportf(importPos,
			"metrics.Breakdown counters incremented but never surfaced through this package's "+
				"QueryStats: %s — the work is counted, then thrown away; mirror the field or drop "+
				"the counter (//nodbvet:counterflow-ok <why> to suppress)", strings.Join(unsurfaced, ", "))
	}
	return nil
}

// breakdownField names the Breakdown counter a selector touches, or "".
func breakdownField(pass *nodbvet.Pass, sel *ast.SelectorExpr) string {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	t := s.Recv()
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Breakdown" || named.Obj().Pkg() == nil ||
		path.Base(named.Obj().Pkg().Path()) != "metrics" {
		return ""
	}
	basic, ok := s.Obj().Type().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Int64 {
		return ""
	}
	return sel.Sel.Name
}

// findBreakdown locates the imported metrics.Breakdown type and the
// position of the metrics import (the diagnostics' anchor).
func findBreakdown(pass *nodbvet.Pass) (*types.Named, token.Pos) {
	var breakdown *types.Named
	for _, imp := range pass.Pkg.Imports() {
		if path.Base(imp.Path()) != "metrics" {
			continue
		}
		if obj, ok := imp.Scope().Lookup("Breakdown").(*types.TypeName); ok {
			breakdown, _ = obj.Type().(*types.Named)
		}
	}
	if breakdown == nil {
		return nil, token.NoPos
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path.Base(strings.Trim(imp.Path.Value, `"`)) == "metrics" {
				return breakdown, imp.Pos()
			}
		}
	}
	return breakdown, pass.Files[0].Pos()
}
