// Fixture under test for counterflow. Package nodb, so the end-to-end
// check fires here: every int64 Breakdown counter must be incremented
// somewhere in the cone (locally or via a dep's counterflow.increments
// fact) and read back out in this package. DeadCounter is never written
// anywhere; VecRows is written in core but never surfaced here.
package nodb

import "metrics" // want `counters never incremented in any analyzed package: DeadCounter` `counters incremented but never surfaced through this package's QueryStats: VecRows`

// QueryStats is the user-facing mirror of the breakdown.
type QueryStats struct {
	BytesRead     int64
	RowsScanned   int64
	MapJumpFields int64
}

// newQueryStats surfaces BytesRead, RowsScanned and MapJumpFields; it
// forgets VecRows, which core increments — flagged at the import.
func newQueryStats(b metrics.Breakdown) QueryStats {
	return QueryStats{
		BytesRead:     b.BytesRead,
		RowsScanned:   b.RowsScanned,
		MapJumpFields: b.MapJumpFields,
	}
}

// chargeJump is a local producer: MapJumpFields is incremented here and
// surfaced above, so it is fully plumbed.
func chargeJump(b *metrics.Breakdown) {
	b.MapJumpFields++
}
