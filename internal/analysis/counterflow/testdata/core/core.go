// Dep fixture for counterflow: a producer package. Its writes to
// Breakdown counters are exported as the counterflow.increments package
// fact, which the root-package check consumes.
package core

import "metrics"

// Scan charges three counters in the three write spellings the analyzer
// recognizes: op-assign, inc/dec, and plain assignment.
func Scan(b *metrics.Breakdown, n int64) {
	b.BytesRead += n
	b.RowsScanned++
	b.VecRows = b.VecRows + n
}
