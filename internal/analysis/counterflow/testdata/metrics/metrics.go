// Dep fixture for counterflow: a miniature metrics.Breakdown. The
// analyzer identifies the type by package base name + type name, so this
// stands in for the real nodb/internal/metrics.
package metrics

// Breakdown mirrors the real per-query counter block.
type Breakdown struct {
	BytesRead     int64
	RowsScanned   int64
	VecRows       int64
	MapJumpFields int64
	DeadCounter   int64
	Elapsed       float64 // not a counter: int64 fields only
}

// Merge folds another breakdown in. The metrics package itself is exempt
// from the producer scan — Merge legitimately touches every field.
func (b *Breakdown) Merge(o Breakdown) {
	b.BytesRead += o.BytesRead
	b.RowsScanned += o.RowsScanned
	b.VecRows += o.VecRows
	b.MapJumpFields += o.MapJumpFields
	b.DeadCounter += o.DeadCounter
	b.Elapsed += o.Elapsed
}
