// Package workload generates the query streams the demo uses: simple
// select-project queries organized into epochs, where each epoch focuses on
// a window of the table's attributes (the audience's "exploratory behavior"
// of Part II). As epochs shift, new attribute combinations are touched and
// old ones go cold — driving the adaptation and eviction the demo
// visualizes.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"nodb/internal/schema"
)

// Query is one generated statement with its epoch tag.
type Query struct {
	SQL   string
	Epoch int
}

// EpochSpec describes one workload epoch.
type EpochSpec struct {
	Queries int // how many queries in the epoch
	// AttrLo..AttrHi (inclusive) is the attribute window queries project
	// from.
	AttrLo, AttrHi int
	// ProjectK attributes are projected per query (clamped to the window).
	ProjectK int
	// FilterAttr, when >= 0, adds "attr < threshold" with roughly
	// SelectivityPct percent of rows qualifying (assuming uniform values in
	// [0, Card)).
	FilterAttr     int
	SelectivityPct int
	Card           int64
	// Aggregate, when true, emits SELECT COUNT(*), SUM(first) instead of a
	// projection (still scans the same attributes).
	Aggregate bool
}

// Epochs expands epoch specs into a concrete query stream over the table.
func Epochs(table string, sch *schema.Schema, specs []EpochSpec, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	var out []Query
	for ei, ep := range specs {
		lo, hi := clampWindow(ep.AttrLo, ep.AttrHi, sch.Len())
		k := ep.ProjectK
		if k <= 0 {
			k = 2
		}
		if k > hi-lo+1 {
			k = hi - lo + 1
		}
		for q := 0; q < ep.Queries; q++ {
			attrs := pickAttrs(rng, lo, hi, k)
			var sb strings.Builder
			sb.WriteString("SELECT ")
			if ep.Aggregate {
				fmt.Fprintf(&sb, "COUNT(*), SUM(%s)", sch.Col(attrs[0]).Name)
			} else {
				for i, a := range attrs {
					if i > 0 {
						sb.WriteString(", ")
					}
					sb.WriteString(sch.Col(a).Name)
				}
			}
			sb.WriteString(" FROM ")
			sb.WriteString(table)
			if ep.FilterAttr >= 0 && ep.FilterAttr < sch.Len() {
				card := ep.Card
				if card <= 0 {
					card = 1000
				}
				pct := ep.SelectivityPct
				if pct <= 0 || pct > 100 {
					pct = 20
				}
				threshold := card * int64(pct) / 100
				fmt.Fprintf(&sb, " WHERE %s < %d", sch.Col(ep.FilterAttr).Name, threshold)
			}
			out = append(out, Query{SQL: sb.String(), Epoch: ei})
		}
	}
	return out
}

// ShiftingWindows builds the canonical Part-II adaptation workload: nEpochs
// epochs of qPerEpoch queries, each epoch's attribute window sliding across
// the table so earlier structures go cold.
func ShiftingWindows(table string, sch *schema.Schema, nEpochs, qPerEpoch int, seed int64) []Query {
	n := sch.Len()
	if n == 0 {
		return nil
	}
	window := n / nEpochs
	if window < 1 {
		window = 1
	}
	specs := make([]EpochSpec, nEpochs)
	for e := range specs {
		lo := e * window
		hi := lo + window - 1
		if e == nEpochs-1 {
			hi = n - 1
		}
		specs[e] = EpochSpec{
			Queries:  qPerEpoch,
			AttrLo:   lo,
			AttrHi:   hi,
			ProjectK: 2,
			// Filter on the window's first attribute for realistic
			// select-project shapes.
			FilterAttr:     lo,
			SelectivityPct: 25,
		}
	}
	return Epochs(table, sch, specs, seed)
}

func clampWindow(lo, hi, n int) (int, int) {
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// pickAttrs chooses k distinct attributes from [lo, hi].
func pickAttrs(rng *rand.Rand, lo, hi, k int) []int {
	span := hi - lo + 1
	perm := rng.Perm(span)[:k]
	out := make([]int, k)
	for i, p := range perm {
		out[i] = lo + p
	}
	// Sort for stable SQL text (small k: insertion sort).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
