package workload

import (
	"fmt"
	"strings"
	"testing"

	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/value"
)

func testSchema(n int) *schema.Schema {
	cols := make([]schema.Column, n)
	for i := range cols {
		cols[i] = schema.Column{Name: fmt.Sprintf("a%d", i), Kind: value.KindInt}
	}
	return schema.MustNew(cols)
}

func TestEpochsGenerateParseableSQL(t *testing.T) {
	sch := testSchema(10)
	specs := []EpochSpec{
		{Queries: 5, AttrLo: 0, AttrHi: 4, ProjectK: 2, FilterAttr: 0, SelectivityPct: 30, Card: 1000},
		{Queries: 5, AttrLo: 5, AttrHi: 9, ProjectK: 3, FilterAttr: -1},
		{Queries: 3, AttrLo: 0, AttrHi: 9, Aggregate: true, FilterAttr: 2, Card: 500},
	}
	qs := Epochs("t", sch, specs, 7)
	if len(qs) != 13 {
		t.Fatalf("queries=%d", len(qs))
	}
	for _, q := range qs {
		if _, err := sql.Parse(q.SQL); err != nil {
			t.Fatalf("generated unparseable SQL %q: %v", q.SQL, err)
		}
	}
	if qs[0].Epoch != 0 || qs[5].Epoch != 1 || qs[12].Epoch != 2 {
		t.Errorf("epoch tags wrong: %v", qs)
	}
	// Epoch 0 queries only touch a0..a4.
	for _, q := range qs[:5] {
		for i := 5; i < 10; i++ {
			if strings.Contains(q.SQL, fmt.Sprintf("a%d", i)) {
				t.Errorf("epoch 0 query %q escaped its window", q.SQL)
			}
		}
	}
	// Aggregate epoch emits COUNT/SUM.
	if !strings.Contains(qs[10].SQL, "COUNT(*)") || !strings.Contains(qs[10].SQL, "SUM(") {
		t.Errorf("aggregate query=%q", qs[10].SQL)
	}
}

func TestEpochsDeterministic(t *testing.T) {
	sch := testSchema(8)
	specs := []EpochSpec{{Queries: 10, AttrLo: 0, AttrHi: 7, ProjectK: 3, FilterAttr: -1}}
	a := Epochs("t", sch, specs, 5)
	b := Epochs("t", sch, specs, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different workloads")
		}
	}
	c := Epochs("t", sch, specs, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestShiftingWindows(t *testing.T) {
	sch := testSchema(12)
	qs := ShiftingWindows("t", sch, 3, 4, 1)
	if len(qs) != 12 {
		t.Fatalf("queries=%d", len(qs))
	}
	for _, q := range qs {
		if _, err := sql.Parse(q.SQL); err != nil {
			t.Fatalf("bad SQL %q: %v", q.SQL, err)
		}
		if !strings.Contains(q.SQL, "WHERE") {
			t.Fatalf("missing filter: %q", q.SQL)
		}
	}
	// Last epoch must reference the tail attributes.
	tail := false
	for _, q := range qs[8:] {
		if strings.Contains(q.SQL, "a8") || strings.Contains(q.SQL, "a9") ||
			strings.Contains(q.SQL, "a10") || strings.Contains(q.SQL, "a11") {
			tail = true
		}
	}
	if !tail {
		t.Error("last epoch never reached tail attributes")
	}
}

func TestWindowClamping(t *testing.T) {
	sch := testSchema(3)
	qs := Epochs("t", sch, []EpochSpec{{Queries: 2, AttrLo: -5, AttrHi: 99, ProjectK: 99, FilterAttr: -1}}, 1)
	for _, q := range qs {
		if _, err := sql.Parse(q.SQL); err != nil {
			t.Fatalf("bad SQL %q: %v", q.SQL, err)
		}
	}
	if ShiftingWindows("t", schema.MustNew(nil), 2, 2, 1) != nil {
		t.Error("empty schema should yield no workload")
	}
}
