// Package planner turns parsed SELECT statements into operator trees. It
// performs name resolution, predicate pushdown into scans (the enabler of
// the paper's selective tokenizing/parsing/tuple formation), stats-driven
// access-path selection for loaded tables, aggregation rewriting, and
// ORDER BY/LIMIT planning.
//
// The planner treats all three access modes uniformly above the leaf: only
// the scan construction differs, mirroring PostgresRaw's "override the scan
// operator, keep the rest of the plan" design.
package planner

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"nodb/internal/core"
	"nodb/internal/engine"
	"nodb/internal/expr"
	"nodb/internal/metrics"
	"nodb/internal/sched"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/stats"
	"nodb/internal/storage"
	"nodb/internal/value"
)

// indexScanMaxSelectivity is the estimated selectivity above which a heap
// scan is preferred over an index scan for loaded tables.
const indexScanMaxSelectivity = 0.25

// OutputCol describes one result column.
type OutputCol struct {
	Name string
	Kind value.Kind
}

// Plan is an executable query plan.
type Plan struct {
	Root    engine.Operator
	Columns []OutputCol
	// ExplainText is the rendered operator tree (EXPLAIN output).
	ExplainText string
}

// Close releases plan resources.
func (p *Plan) Close() error { return p.Root.Close() }

// Build compiles a parsed SELECT against the catalog. All scan and operator
// costs are charged to b.
func Build(sel *sql.Select, cat *schema.Catalog, b *metrics.Breakdown) (*Plan, error) {
	pb := &builder{cat: cat, b: b}
	return pb.build(sel)
}

// tableSrc is one resolved FROM/JOIN table.
type tableSrc struct {
	qual   string // alias or name, lower case
	entry  *schema.Table
	refSet map[int]bool
	refs   []int // referenced attrs, sorted (scan output order)
	slotLo int   // first slot in the combined env
}

type builder struct {
	cat    *schema.Catalog
	b      *metrics.Breakdown
	ctx    context.Context // nil = not cancellable; wired into leaf scans
	noVec  bool            // force row-at-a-time expression evaluation
	tables []*tableSrc
	env    *expr.Env // combined env over all tables' referenced columns

	// Aggregation state (set by buildAggregation).
	aggKeys   []sql.Expr
	aggCalls  []sql.FuncCall
	aggPushed bool // aggregation pushed into the raw scan's chunk workers
}

func (pb *builder) build(sel *sql.Select) (*Plan, error) {
	if err := pb.resolveTables(sel); err != nil {
		return nil, err
	}
	items, err := pb.expandStars(sel.Items)
	if err != nil {
		return nil, err
	}
	// Output names come from the pre-rewrite expressions (aggregates render
	// as their call text, e.g. "COUNT(*)", even after the planner rewrites
	// them into references over the aggregation operator).
	names := make([]string, len(items))
	for i, it := range items {
		names[i] = outputName(it)
	}
	return pb.buildResolved(sel, items, names)
}

// buildResolved is the planning pipeline after table resolution and star
// expansion — the part that must rerun per execution of a prepared
// statement (bound parameter values feed pushdown, selectivity estimation
// and access-path choice; operators are stateful and single-use).
func (pb *builder) buildResolved(sel *sql.Select, items []sql.SelectItem, names []string) (*Plan, error) {
	if err := pb.collectRefs(sel, items); err != nil {
		return nil, err
	}
	pb.buildEnv()

	// Split WHERE into per-table pushdown conjuncts and residual conjuncts.
	conjuncts := splitAnd(sel.Where)
	pushed := make([][]sql.Expr, len(pb.tables))
	var residual []sql.Expr
	for _, c := range conjuncts {
		ti, single := pb.singleTable(c)
		if single && ti >= 0 {
			pushed[ti] = append(pushed[ti], c)
		} else {
			residual = append(residual, c)
		}
	}

	// Leaf + join chain.
	root, etree, err := pb.buildScan(0, pushed[0])
	if err != nil {
		return nil, err
	}
	for j, join := range sel.Joins {
		ti := j + 1
		right, rtree, err := pb.buildScan(ti, pushed[ti])
		if err != nil {
			closeQuiet(root)
			return nil, err
		}
		root, etree, err = pb.buildJoin(root, right, etree, rtree, ti, join)
		if err != nil {
			closeQuiet(root)
			closeQuiet(right)
			return nil, err
		}
	}

	// Residual WHERE conjuncts above the joins.
	if len(residual) > 0 {
		pred, err := expr.Compile(andAll(residual), pb.env)
		if err != nil {
			closeQuiet(root)
			return nil, err
		}
		f := engine.NewFilter(root, pred, pb.b)
		f.SetVectorized(!pb.noVec)
		root = f
		etree = wrap("Filter("+andAll(residual).String()+")"+vecMark(f), etree)
	}

	// Aggregation.
	curEnv := pb.env
	hasAgg := len(sel.GroupBy) > 0 || anyAggregate(items, sel)
	if hasAgg {
		root, curEnv, items, err = pb.buildAggregation(root, sel, items)
		if err != nil {
			closeQuiet(root)
			return nil, err
		}
		partial := ""
		if pb.aggPushed {
			partial = ", partial=workers"
		}
		etree = wrap(fmt.Sprintf("HashAgg(keys=[%s], aggs=[%s]%s)",
			exprList(pb.aggKeys), exprList(pb.aggCalls), partial), etree)
		// HAVING over the aggregation output.
		if sel.Having != nil {
			h := rewriteOverAgg(sel.Having, pb.aggKeys, pb.aggCalls)
			pred, err := expr.Compile(h, curEnv)
			if err != nil {
				closeQuiet(root)
				return nil, err
			}
			f := engine.NewFilter(root, pred, pb.b)
			f.SetVectorized(!pb.noVec)
			root = f
			etree = wrap("Filter(HAVING "+sel.Having.String()+")"+vecMark(f), etree)
		}
	} else if sel.Having != nil {
		closeQuiet(root)
		return nil, fmt.Errorf("planner: HAVING requires GROUP BY or aggregates")
	}

	// Projection (+ hidden ORDER BY columns), sort, distinct, limit.
	return pb.finish(root, etree, curEnv, sel, items, names, hasAgg)
}

func closeQuiet(op engine.Operator) {
	if op != nil {
		op.Close()
	}
}

// vecMark renders the EXPLAIN " vec" marker for operators whose
// expressions actually evaluate column-at-a-time: the evaluator compiled
// and the operator sits on a batch-producing input.
func vecMark(op interface {
	Batched() bool
	Vectorized() bool
}) string {
	if op.Batched() && op.Vectorized() {
		return " vec"
	}
	return ""
}

// resolveTables looks up FROM and JOIN tables.
func (pb *builder) resolveTables(sel *sql.Select) error {
	add := func(ref sql.TableRef) error {
		entry, ok := pb.cat.Lookup(ref.Name)
		if !ok {
			return fmt.Errorf("planner: unknown table %q", ref.Name)
		}
		qual := strings.ToLower(ref.AliasOrName())
		for _, t := range pb.tables {
			if t.qual == qual {
				return fmt.Errorf("planner: duplicate table name/alias %q", qual)
			}
		}
		pb.tables = append(pb.tables, &tableSrc{qual: qual, entry: entry, refSet: map[int]bool{}})
		return nil
	}
	if err := add(sel.From); err != nil {
		return err
	}
	for _, j := range sel.Joins {
		if err := add(j.Table); err != nil {
			return err
		}
	}
	return nil
}

// expandStars replaces * select items with explicit column references.
func (pb *builder) expandStars(items []sql.SelectItem) ([]sql.SelectItem, error) {
	var out []sql.SelectItem
	for _, it := range items {
		if _, isStar := it.Expr.(sql.Star); !isStar {
			out = append(out, it)
			continue
		}
		if it.Alias != "" {
			return nil, fmt.Errorf("planner: cannot alias *")
		}
		for _, t := range pb.tables {
			sch := t.entry.Schema
			for i := 0; i < sch.Len(); i++ {
				out = append(out, sql.SelectItem{
					Expr: sql.ColumnRef{Table: t.qual, Name: sch.Col(i).Name},
				})
			}
		}
	}
	return out, nil
}

// noteRef records a column reference against its table.
func (pb *builder) noteRef(c sql.ColumnRef) error {
	qual := strings.ToLower(c.Table)
	name := strings.ToLower(c.Name)
	if strings.HasPrefix(name, "#") { // synthetic; resolved later
		return nil
	}
	found := -1
	attr := -1
	for ti, t := range pb.tables {
		if qual != "" && t.qual != qual {
			continue
		}
		if i := t.entry.Schema.Index(name); i >= 0 {
			if found >= 0 {
				return fmt.Errorf("planner: ambiguous column %q", c.Name)
			}
			found, attr = ti, i
		}
	}
	if found < 0 {
		return fmt.Errorf("planner: unknown column %q", c.String())
	}
	pb.tables[found].refSet[attr] = true
	return nil
}

// collectRefs walks every expression in the query, recording referenced
// columns per table.
func (pb *builder) collectRefs(sel *sql.Select, items []sql.SelectItem) error {
	var all []sql.ColumnRef
	for _, it := range items {
		all = expr.Columns(it.Expr, all)
	}
	if sel.Where != nil {
		all = expr.Columns(sel.Where, all)
	}
	for _, g := range sel.GroupBy {
		all = expr.Columns(g, all)
	}
	if sel.Having != nil {
		all = expr.Columns(sel.Having, all)
	}
	for _, o := range sel.OrderBy {
		all = expr.Columns(o.Expr, all)
	}
	for _, j := range sel.Joins {
		if j.On != nil {
			all = expr.Columns(j.On, all)
		}
	}
	for _, c := range all {
		if err := pb.noteRef(c); err != nil {
			// ORDER BY may reference select aliases; tolerate unknown
			// columns here when they match an alias (checked at finish).
			if matchesAlias(c, items) {
				continue
			}
			return err
		}
	}
	for _, t := range pb.tables {
		t.refs = t.refs[:0]
		for a := range t.refSet {
			t.refs = append(t.refs, a)
		}
		sort.Ints(t.refs)
	}
	return nil
}

func matchesAlias(c sql.ColumnRef, items []sql.SelectItem) bool {
	if c.Table != "" {
		return false
	}
	for _, it := range items {
		if it.Alias != "" && strings.EqualFold(it.Alias, c.Name) {
			return true
		}
	}
	return false
}

// buildEnv lays out the combined environment: each table's referenced
// columns, in table order.
func (pb *builder) buildEnv() {
	pb.env = expr.NewEnv()
	for _, t := range pb.tables {
		t.slotLo = pb.env.Len()
		for _, a := range t.refs {
			col := t.entry.Schema.Col(a)
			pb.env.Add(t.qual, col.Name, col.Kind)
		}
	}
}

// scanEnv builds the environment local to one table's scan output.
func (pb *builder) scanEnv(ti int) *expr.Env {
	t := pb.tables[ti]
	env := expr.NewEnv()
	for _, a := range t.refs {
		col := t.entry.Schema.Col(a)
		env.Add(t.qual, col.Name, col.Kind)
	}
	return env
}

// singleTable reports whether e references exactly zero or one table; the
// returned index is -1 for constant expressions.
func (pb *builder) singleTable(e sql.Expr) (int, bool) {
	cols := expr.Columns(e, nil)
	found := -1
	for _, c := range cols {
		qual := strings.ToLower(c.Table)
		name := strings.ToLower(c.Name)
		ti := -1
		for i, t := range pb.tables {
			if qual != "" && t.qual != qual {
				continue
			}
			if t.entry.Schema.Index(name) >= 0 {
				ti = i
				break
			}
		}
		if ti < 0 {
			return 0, false // unknown (alias?) — keep residual
		}
		if found >= 0 && found != ti {
			return 0, false
		}
		found = ti
	}
	if len(cols) == 0 {
		return -1, false
	}
	return found, true
}

// splitAnd flattens an AND tree into conjuncts.
func splitAnd(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if be, ok := e.(sql.BinaryExpr); ok && be.Op == sql.OpAnd {
		return append(splitAnd(be.Left), splitAnd(be.Right)...)
	}
	return []sql.Expr{e}
}

// andAll combines conjuncts back into one expression.
func andAll(cs []sql.Expr) sql.Expr {
	e := cs[0]
	for _, c := range cs[1:] {
		e = sql.BinaryExpr{Op: sql.OpAnd, Left: e, Right: c}
	}
	return e
}

// estimator returns the stats collector for a table, if any.
func (pb *builder) estimator(ti int) *stats.Collector {
	switch h := pb.tables[ti].entry.Handle.(type) {
	case *storage.Table:
		return h.Stats()
	case core.RawTable:
		return h.StatsCollector()
	default:
		return nil
	}
}

// conjunctShape extracts `col op literal` (normalizing literal op col), for
// selectivity estimation and index selection. ok=false for other shapes.
func (pb *builder) conjunctShape(ti int, e sql.Expr) (attr int, op string, operand value.Value, ok bool) {
	be, isBin := e.(sql.BinaryExpr)
	if !isBin {
		return 0, "", value.Null(), false
	}
	switch be.Op {
	case sql.OpEq, sql.OpNe, sql.OpLt, sql.OpLe, sql.OpGt, sql.OpGe:
	default:
		return 0, "", value.Null(), false
	}
	col, colOK := be.Left.(sql.ColumnRef)
	lit := be.Right
	op = be.Op
	if !colOK {
		col, colOK = be.Right.(sql.ColumnRef)
		lit = be.Left
		op = flipOp(be.Op)
	}
	if !colOK {
		return 0, "", value.Null(), false
	}
	if len(expr.Columns(lit, nil)) != 0 {
		return 0, "", value.Null(), false
	}
	t := pb.tables[ti]
	attr = t.entry.Schema.Index(col.Name)
	if attr < 0 {
		return 0, "", value.Null(), false
	}
	node, err := expr.Compile(lit, expr.NewEnv())
	if err != nil {
		return 0, "", value.Null(), false
	}
	v, err := node.Eval(nil)
	if err != nil {
		return 0, "", value.Null(), false
	}
	return attr, op, v, true
}

func flipOp(op string) string {
	switch op {
	case sql.OpLt:
		return sql.OpGt
	case sql.OpLe:
		return sql.OpGe
	case sql.OpGt:
		return sql.OpLt
	case sql.OpGe:
		return sql.OpLe
	default:
		return op
	}
}

// orderBySelectivity sorts pushdown conjuncts most-selective-first using the
// table's statistics — the paper's on-the-fly statistics feeding the
// optimizer.
func (pb *builder) orderBySelectivity(ti int, conjuncts []sql.Expr) []sql.Expr {
	est := pb.estimator(ti)
	if est == nil || len(conjuncts) < 2 {
		return conjuncts
	}
	type ranked struct {
		e   sql.Expr
		sel float64
	}
	rs := make([]ranked, len(conjuncts))
	for i, c := range conjuncts {
		sel := 0.5
		if attr, op, v, ok := pb.conjunctShape(ti, c); ok {
			sel = est.Selectivity(attr, op, v)
		}
		rs[i] = ranked{e: c, sel: sel}
	}
	sort.SliceStable(rs, func(i, j int) bool { return rs[i].sel < rs[j].sel })
	out := make([]sql.Expr, len(rs))
	for i, r := range rs {
		out[i] = r.e
	}
	return out
}

// buildScan constructs the leaf operator for table ti with its pushdown
// conjuncts, plus its EXPLAIN node.
func (pb *builder) buildScan(ti int, conjuncts []sql.Expr) (engine.Operator, *enode, error) {
	t := pb.tables[ti]
	conjuncts = pb.orderBySelectivity(ti, conjuncts)
	switch h := t.entry.Handle.(type) {
	case *storage.Table:
		return pb.buildLoadedScan(ti, h, conjuncts)
	case core.RawTable:
		return pb.buildRawScan(ti, h, conjuncts)
	default:
		return nil, nil, fmt.Errorf("planner: table %q has no storage handle", t.qual)
	}
}

// buildRawScan wires pushdown into the in-situ scan spec (single-file or
// sharded raw tables alike).
func (pb *builder) buildRawScan(ti int, h core.RawTable, conjuncts []sql.Expr) (engine.Operator, *enode, error) {
	t := pb.tables[ti]
	spec := core.ScanSpec{Needed: t.refs, B: pb.b, Ctx: pb.ctx}
	if len(conjuncts) > 0 {
		env := pb.scanEnv(ti)
		pred, err := expr.Compile(andAll(conjuncts), env)
		if err != nil {
			return nil, nil, err
		}
		// Filter attributes: schema attrs referenced by the conjuncts.
		fset := map[int]bool{}
		for _, c := range conjuncts {
			for _, cr := range expr.Columns(c, nil) {
				if a := t.entry.Schema.Index(cr.Name); a >= 0 {
					fset[a] = true
				}
			}
		}
		for a := range fset {
			spec.FilterAttrs = append(spec.FilterAttrs, a)
		}
		sort.Ints(spec.FilterAttrs)
		spec.Filter = func(row []value.Value) (bool, error) {
			v, err := pred.Eval(row)
			if err != nil {
				return false, err
			}
			return v.IsTrue(), nil
		}
		// Vectorized variant of the same predicate: each chunk worker gets
		// a private evaluator (they carry scratch and run concurrently, so
		// the factory is invoked from several goroutines). The probe
		// compile is handed to whichever worker asks first rather than
		// thrown away.
		if !pb.noVec {
			if probe, ok := expr.CompileVec(pred); ok {
				var first atomic.Pointer[expr.VecEval]
				first.Store(probe)
				spec.NewBatchFilter = func() *expr.VecEval {
					if ve := first.Swap(nil); ve != nil {
						return ve
					}
					ve, _ := expr.CompileVec(pred)
					return ve
				}
			}
		}
	}
	op, err := engine.NewRawScan(h, spec)
	if err != nil {
		return nil, nil, err
	}
	label := fmt.Sprintf("RawScan(%s mode=%s attrs=%s", t.qual, t.entry.Mode, attrNames(t))
	if sh, sharded := h.(*core.ShardedTable); sharded {
		label += fmt.Sprintf(" shards=%d", sh.NumShards())
	}
	if pt, part := h.(*core.PartitionedTable); part {
		// Boundary discovery is lazy; EXPLAIN must not do file I/O under the
		// catalog lock, so an unscanned table shows "?" instead of a count.
		if n := pt.DiscoveredPartitions(); n > 0 {
			label += fmt.Sprintf(" partitions=%d", n)
		} else {
			label += " partitions=?"
		}
	}
	hopts := h.Options()
	// Static scheduler facts only: pool telemetry (queue depths, steals) is
	// timing-dependent and stays out of the plan text.
	if hopts.Parallelism > 1 {
		pool := hopts.Scheduler
		if pool == nil {
			pool = sched.Default()
		}
		label += fmt.Sprintf(" parallel=%d pool=%d", hopts.Parallelism, pool.Stats().MaxWorkers)
	}
	// Non-default error policy is part of the plan's observable behavior
	// (it changes result rows), so EXPLAIN surfaces it; defaults stay quiet.
	if hopts.OnError != core.OnErrorNull || hopts.MaxErrors > 0 {
		label += " on_error=" + hopts.OnError.String()
		if hopts.MaxErrors > 0 {
			label += fmt.Sprintf(" max_errors=%d", hopts.MaxErrors)
		}
	}
	if len(conjuncts) > 0 {
		label += " filter=" + andAll(conjuncts).String()
		if spec.NewBatchFilter != nil {
			label += " vec"
		}
	}
	label += ")"
	return op, en(label), nil
}

// attrNames renders a table's referenced attribute names.
func attrNames(t *tableSrc) string {
	names := make([]string, len(t.refs))
	for i, a := range t.refs {
		names[i] = t.entry.Schema.Col(a).Name
	}
	return "[" + strings.Join(names, " ") + "]"
}

// buildLoadedScan picks index vs heap scan for a load-first table.
func (pb *builder) buildLoadedScan(ti int, h *storage.Table, conjuncts []sql.Expr) (engine.Operator, *enode, error) {
	t := pb.tables[ti]
	est := h.Stats()

	// Try an index-driven access path on the first usable conjunct.
	for ci, c := range conjuncts {
		attr, op, v, ok := pb.conjunctShape(ti, c)
		if !ok || op == sql.OpNe {
			continue
		}
		ix, has := h.Index(attr)
		if !has {
			continue
		}
		sel := 0.1
		if est != nil {
			sel = est.Selectivity(attr, op, v)
		}
		if sel > indexScanMaxSelectivity {
			continue
		}
		var rids []storage.RID
		switch op {
		case sql.OpEq:
			rids = ix.SearchEq(v)
		case sql.OpLt:
			rids = ix.SearchRange(value.Null(), v, true, false)
		case sql.OpLe:
			rids = ix.SearchRange(value.Null(), v, true, true)
		case sql.OpGt:
			rids = ix.SearchRange(v, value.Null(), false, true)
		case sql.OpGe:
			rids = ix.SearchRange(v, value.Null(), true, true)
		}
		ixs := engine.NewIndexScan(h, rids, t.refs, pb.b)
		ixs.SetContext(pb.ctx)
		var op2 engine.Operator = ixs
		node := en(fmt.Sprintf("IndexScan(%s attrs=%s key=%s sel=%.3f rids=%d)",
			t.qual, attrNames(t), c.String(), sel, len(rids)))
		rest := append(append([]sql.Expr{}, conjuncts[:ci]...), conjuncts[ci+1:]...)
		if len(rest) > 0 {
			pred, err := expr.Compile(andAll(rest), pb.scanEnv(ti))
			if err != nil {
				return nil, nil, err
			}
			f := engine.NewFilter(op2, pred, pb.b)
			f.SetVectorized(!pb.noVec)
			op2 = f
			node = wrap("Filter("+andAll(rest).String()+")", node)
		}
		return op2, node, nil
	}

	hs := engine.NewHeapScan(h, t.refs, pb.b)
	hs.SetContext(pb.ctx)
	var op engine.Operator = hs
	node := en(fmt.Sprintf("HeapScan(%s attrs=%s)", t.qual, attrNames(t)))
	if len(conjuncts) > 0 {
		pred, err := expr.Compile(andAll(conjuncts), pb.scanEnv(ti))
		if err != nil {
			return nil, nil, err
		}
		f := engine.NewFilter(op, pred, pb.b)
		f.SetVectorized(!pb.noVec)
		op = f
		node = wrap("Filter("+andAll(conjuncts).String()+")", node)
	}
	return op, node, nil
}

// buildJoin attaches table ti to the left-deep chain.
func (pb *builder) buildJoin(left, right engine.Operator, ltree, rtree *enode, ti int, join sql.Join) (engine.Operator, *enode, error) {
	t := pb.tables[ti]
	rightWidth := len(t.refs)
	// Environment covering all tables up to and including ti.
	combined := expr.NewEnv()
	for _, tt := range pb.tables[:ti+1] {
		for _, a := range tt.refs {
			col := tt.entry.Schema.Col(a)
			combined.Add(tt.qual, col.Name, col.Kind)
		}
	}

	if join.Kind == sql.JoinCross {
		return engine.NewNLJoin(left, right, nil, false, rightWidth, pb.b),
			en("NLJoin(cross)", ltree, rtree), nil
	}

	// Partition ON conjuncts into equi keys and residual.
	var probeKeys, buildKeys []expr.Node
	var residual []sql.Expr
	leftEnv := expr.NewEnv()
	for _, tt := range pb.tables[:ti] {
		for _, a := range tt.refs {
			col := tt.entry.Schema.Col(a)
			leftEnv.Add(tt.qual, col.Name, col.Kind)
		}
	}
	rightEnv := pb.scanEnv(ti)

	for _, c := range splitAnd(join.On) {
		be, ok := c.(sql.BinaryExpr)
		if ok && be.Op == sql.OpEq {
			l, lok := pb.sideOf(be.Left, ti)
			r, rok := pb.sideOf(be.Right, ti)
			if lok && rok && l != r {
				leftExpr, rightExpr := be.Left, be.Right
				if l == 1 { // swap so leftExpr belongs to the probe side
					leftExpr, rightExpr = be.Right, be.Left
				}
				pk, err := expr.Compile(leftExpr, leftEnv)
				if err != nil {
					return nil, nil, err
				}
				bk, err := expr.Compile(rightExpr, rightEnv)
				if err != nil {
					return nil, nil, err
				}
				probeKeys = append(probeKeys, pk)
				buildKeys = append(buildKeys, bk)
				continue
			}
		}
		residual = append(residual, c)
	}

	leftOuter := join.Kind == sql.JoinLeft
	kind := "inner"
	if leftOuter {
		kind = "left-outer"
	}
	if len(probeKeys) > 0 {
		var res expr.Node
		if len(residual) > 0 {
			n, err := expr.Compile(andAll(residual), combined)
			if err != nil {
				return nil, nil, err
			}
			res = n
		}
		label := fmt.Sprintf("HashJoin(%s on=%s)", kind, join.On.String())
		return engine.NewHashJoin(left, right, probeKeys, buildKeys, res, leftOuter, rightWidth, pb.b),
			en(label, ltree, rtree), nil
	}
	var on expr.Node
	if join.On != nil {
		n, err := expr.Compile(join.On, combined)
		if err != nil {
			return nil, nil, err
		}
		on = n
	}
	label := fmt.Sprintf("NLJoin(%s", kind)
	if join.On != nil {
		label += " on=" + join.On.String()
	}
	label += ")"
	return engine.NewNLJoin(left, right, on, leftOuter, rightWidth, pb.b),
		en(label, ltree, rtree), nil
}

// sideOf reports which side of join ti an expression's columns belong to:
// 0 = earlier tables (probe), 1 = table ti (build).
func (pb *builder) sideOf(e sql.Expr, ti int) (int, bool) {
	cols := expr.Columns(e, nil)
	if len(cols) == 0 {
		return 0, false
	}
	side := -1
	for _, c := range cols {
		qual := strings.ToLower(c.Table)
		name := strings.ToLower(c.Name)
		s := -1
		for i, t := range pb.tables[:ti+1] {
			if qual != "" && t.qual != qual {
				continue
			}
			if t.entry.Schema.Index(name) >= 0 {
				if i == ti {
					s = 1
				} else {
					s = 0
				}
				break
			}
		}
		if s < 0 {
			return 0, false
		}
		if side >= 0 && side != s {
			return 0, false
		}
		side = s
	}
	return side, true
}
