package planner

import (
	"fmt"
	"strings"

	"nodb/internal/engine"
	"nodb/internal/expr"
	"nodb/internal/sql"
)

// finish plans projection, DISTINCT, ORDER BY (with hidden sort columns),
// and LIMIT/OFFSET on top of the current operator. names carries the output
// column names derived from the pre-rewrite select items.
func (pb *builder) finish(root engine.Operator, etree *enode, curEnv *expr.Env, sel *sql.Select, items []sql.SelectItem, names []string, hasAgg bool) (*Plan, error) {
	// Compile the projection.
	var projNodes []expr.Node
	var outCols []OutputCol
	for i, it := range items {
		n, err := expr.Compile(it.Expr, curEnv)
		if err != nil {
			closeQuiet(root)
			return nil, err
		}
		projNodes = append(projNodes, n)
		outCols = append(outCols, OutputCol{Name: names[i], Kind: n.Kind()})
	}

	// ORDER BY keys: references to select aliases (or positions) sort on the
	// projected column; anything else becomes a hidden projection column.
	type sortPlan struct {
		slot int // slot in the extended projection
		desc bool
	}
	var sorts []sortPlan
	var hidden []expr.Node
	for _, o := range sel.OrderBy {
		oe := o.Expr
		if hasAgg {
			oe = rewriteOverAgg(oe, pb.aggKeys, pb.aggCalls)
		}
		if slot, ok := aliasSlot(oe, items); ok {
			sorts = append(sorts, sortPlan{slot: slot, desc: o.Desc})
			continue
		}
		if lit, ok := oe.(sql.IntLit); ok { // ORDER BY 2 (1-based position)
			if lit.V < 1 || lit.V > int64(len(items)) {
				closeQuiet(root)
				return nil, fmt.Errorf("planner: ORDER BY position %d out of range", lit.V)
			}
			sorts = append(sorts, sortPlan{slot: int(lit.V) - 1, desc: o.Desc})
			continue
		}
		n, err := expr.Compile(oe, curEnv)
		if err != nil {
			closeQuiet(root)
			return nil, err
		}
		sorts = append(sorts, sortPlan{slot: len(projNodes) + len(hidden), desc: o.Desc})
		hidden = append(hidden, n)
	}

	if sel.Distinct && len(hidden) > 0 {
		closeQuiet(root)
		return nil, fmt.Errorf("planner: with DISTINCT, ORDER BY must reference select list columns")
	}

	// Extended projection env (synthetic names, collision-free).
	extEnv := expr.NewEnv()
	for i, n := range projNodes {
		extEnv.Add("", fmt.Sprintf("#out%d", i), n.Kind())
	}
	for i, n := range hidden {
		extEnv.Add("", fmt.Sprintf("#hid%d", i), n.Kind())
	}

	op := engine.NewProject(root, append(append([]expr.Node{}, projNodes...), hidden...), pb.b)
	op.SetVectorized(!pb.noVec)
	var cur engine.Operator = op
	etree = wrap("Project("+strings.Join(names, ", ")+")"+vecMark(op), etree)

	if sel.Distinct {
		cur = engine.NewDistinct(cur, pb.b)
		etree = wrap("Distinct", etree)
	}
	if len(sorts) > 0 {
		keys := make([]engine.SortKey, len(sorts))
		var labels []string
		for i, s := range sorts {
			keys[i] = engine.SortKey{Expr: expr.Slot(extEnv, s.slot), Desc: s.desc}
			dir := "asc"
			if s.desc {
				dir = "desc"
			}
			labels = append(labels, fmt.Sprintf("%s %s", sel.OrderBy[i].Expr, dir))
		}
		cur = engine.NewSort(cur, keys, pb.b)
		etree = wrap("Sort("+strings.Join(labels, ", ")+")", etree)
	}
	if len(hidden) > 0 {
		// Cut the hidden columns back off.
		cut := make([]expr.Node, len(projNodes))
		for i := range projNodes {
			cut[i] = expr.Slot(extEnv, i)
		}
		cutOp := engine.NewProject(cur, cut, pb.b)
		cutOp.SetVectorized(!pb.noVec)
		cur = cutOp
	}
	if sel.Limit >= 0 || sel.Offset > 0 {
		cur = engine.NewLimit(cur, sel.Offset, sel.Limit)
		if sel.Limit >= 0 {
			etree = wrap(fmt.Sprintf("Limit(%d offset %d)", sel.Limit, sel.Offset), etree)
		} else {
			etree = wrap(fmt.Sprintf("Offset(%d)", sel.Offset), etree)
		}
	}
	return &Plan{Root: cur, Columns: outCols, ExplainText: etree.String()}, nil
}

// outputName derives a result column name from a select item.
func outputName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(sql.ColumnRef); ok {
		return cr.Name
	}
	return it.Expr.String()
}

// aliasSlot matches a bare column reference against select-item aliases and
// output column names, returning the projection slot.
func aliasSlot(e sql.Expr, items []sql.SelectItem) (int, bool) {
	cr, ok := e.(sql.ColumnRef)
	if !ok || cr.Table != "" {
		return 0, false
	}
	// Prefer explicit aliases.
	for i, it := range items {
		if it.Alias != "" && strings.EqualFold(it.Alias, cr.Name) {
			return i, true
		}
	}
	// Then exact projection matches (ORDER BY a when SELECT a).
	for i, it := range items {
		if pc, ok := it.Expr.(sql.ColumnRef); ok && strings.EqualFold(pc.Name, cr.Name) {
			return i, true
		}
	}
	return 0, false
}
