package planner

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nodb/internal/core"
	"nodb/internal/engine"
	"nodb/internal/metrics"
	"nodb/internal/schema"
	"nodb/internal/sql"
	"nodb/internal/storage"
	"nodb/internal/value"
)

// setup registers three tables over the same data: "raw" (in-situ),
// "loaded" (heap, stats), "indexed" (heap + B+tree on id), plus a small
// dimension table "dim" for joins.
func setup(t *testing.T, rows int) *schema.Catalog {
	t.Helper()
	dir := t.TempDir()
	sch := schema.MustNew([]schema.Column{
		{Name: "id", Kind: value.KindInt},
		{Name: "name", Kind: value.KindText},
		{Name: "score", Kind: value.KindFloat},
		{Name: "grp", Kind: value.KindInt},
	})
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d,n%d,%g,%d\n", i, i, float64(i)/4, i%5)
	}
	csv := filepath.Join(dir, "data.csv")
	if err := os.WriteFile(csv, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	cat := schema.NewCatalog()

	raw, err := core.NewTable(csv, sch, core.InSituOptions())
	if err != nil {
		t.Fatal(err)
	}
	cat.Register(&schema.Table{Name: "raw", Schema: sch, Mode: schema.AccessInSitu, Path: csv, Handle: raw})

	var lb metrics.Breakdown
	loaded, err := storage.LoadCSV(csv, filepath.Join(dir, "l.heap"), sch,
		storage.LoadOptions{CollectStats: true}, &lb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { loaded.Close() })
	cat.Register(&schema.Table{Name: "loaded", Schema: sch, Mode: schema.AccessLoadFirst, Path: csv, Handle: loaded})

	indexed, err := storage.LoadCSV(csv, filepath.Join(dir, "i.heap"), sch,
		storage.LoadOptions{CollectStats: true, IndexAttrs: []int{0}}, &lb)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { indexed.Close() })
	cat.Register(&schema.Table{Name: "indexed", Schema: sch, Mode: schema.AccessLoadFirst, Path: csv, Handle: indexed})

	dimSch := schema.MustNew([]schema.Column{
		{Name: "grp", Kind: value.KindInt},
		{Name: "label", Kind: value.KindText},
	})
	var db strings.Builder
	for g := 0; g < 5; g++ {
		fmt.Fprintf(&db, "%d,group-%d\n", g, g)
	}
	dimCSV := filepath.Join(dir, "dim.csv")
	os.WriteFile(dimCSV, []byte(db.String()), 0o644)
	dim, err := core.NewTable(dimCSV, dimSch, core.InSituOptions())
	if err != nil {
		t.Fatal(err)
	}
	cat.Register(&schema.Table{Name: "dim", Schema: dimSch, Mode: schema.AccessInSitu, Path: dimCSV, Handle: dim})

	return cat
}

func run(t *testing.T, cat *schema.Catalog, q string) ([][]value.Value, []OutputCol, *metrics.Breakdown) {
	t.Helper()
	sel, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	var b metrics.Breakdown
	plan, err := Build(sel, cat, &b)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	defer plan.Close()
	var out [][]value.Value
	for {
		row, ok, err := plan.Root.Next()
		if err != nil {
			t.Fatalf("exec %q: %v", q, err)
		}
		if !ok {
			return out, plan.Columns, &b
		}
		cp := make([]value.Value, len(row))
		copy(cp, row)
		out = append(out, cp)
	}
}

func TestSelectProjectFilter(t *testing.T) {
	cat := setup(t, 1000)
	for _, tbl := range []string{"raw", "loaded", "indexed"} {
		rows, cols, _ := run(t, cat, fmt.Sprintf("SELECT id, name FROM %s WHERE id < 10", tbl))
		if len(rows) != 10 {
			t.Fatalf("%s: rows=%d", tbl, len(rows))
		}
		if cols[0].Name != "id" || cols[1].Name != "name" {
			t.Errorf("%s: cols=%v", tbl, cols)
		}
		if rows[3][0].I != 3 || rows[3][1].S != "n3" {
			t.Errorf("%s: row3=%v", tbl, rows[3])
		}
	}
}

func TestAllModesAgree(t *testing.T) {
	cat := setup(t, 2000)
	queries := []string{
		"SELECT * FROM %s",
		"SELECT id FROM %s WHERE grp = 3 AND id > 100",
		"SELECT COUNT(*), SUM(id), AVG(score), MIN(id), MAX(id) FROM %s",
		"SELECT grp, COUNT(*) AS n, SUM(score) FROM %s GROUP BY grp ORDER BY grp",
		"SELECT id, score FROM %s WHERE score >= 100.0 ORDER BY id DESC LIMIT 7",
		"SELECT DISTINCT grp FROM %s ORDER BY grp",
		"SELECT grp, COUNT(*) FROM %s WHERE id %% 2 = 0 GROUP BY grp HAVING COUNT(*) > 10 ORDER BY grp",
		"SELECT id + grp AS x FROM %s WHERE id BETWEEN 5 AND 9 ORDER BY x",
		"SELECT name FROM %s WHERE name LIKE 'n12%%' ORDER BY name LIMIT 5",
	}
	for _, q := range queries {
		rawRows, _, _ := run(t, cat, fmt.Sprintf(q, "raw"))
		for _, tbl := range []string{"loaded", "indexed"} {
			got, _, _ := run(t, cat, fmt.Sprintf(q, tbl))
			if len(got) != len(rawRows) {
				t.Fatalf("%q: %s=%d rows, raw=%d", q, tbl, len(got), len(rawRows))
			}
			for r := range got {
				for c := range got[r] {
					if !value.Equal(got[r][c], rawRows[r][c]) {
						t.Fatalf("%q: %s row %d col %d = %v, raw %v", q, tbl, r, c, got[r][c], rawRows[r][c])
					}
				}
			}
		}
	}
}

func TestRepeatedRawQueriesStayCorrect(t *testing.T) {
	cat := setup(t, 1500)
	var prev [][]value.Value
	for i := 0; i < 4; i++ {
		rows, _, _ := run(t, cat, "SELECT id, score FROM raw WHERE grp = 2 ORDER BY id")
		if prev != nil && len(rows) != len(prev) {
			t.Fatalf("pass %d rows=%d, prev=%d", i, len(rows), len(prev))
		}
		prev = rows
	}
	if len(prev) != 300 {
		t.Fatalf("rows=%d", len(prev))
	}
}

func TestIndexScanChosenForSelectivePredicate(t *testing.T) {
	cat := setup(t, 5000)
	// Very selective: equality on the indexed unique id. An index scan reads
	// roughly one page; a heap scan reads them all.
	_, _, b := run(t, cat, "SELECT id, name FROM indexed WHERE id = 1234")
	full, _, bf := run(t, cat, "SELECT id, name FROM loaded WHERE id = 1234")
	if len(full) != 1 {
		t.Fatal("wrong result")
	}
	if b.BytesRead >= bf.BytesRead {
		t.Errorf("index scan read %d bytes, heap %d; expected far less", b.BytesRead, bf.BytesRead)
	}
	if b.RowsScanned != 1 {
		t.Errorf("index scan touched %d rows", b.RowsScanned)
	}
}

func TestHeapScanChosenForUnselectivePredicate(t *testing.T) {
	cat := setup(t, 5000)
	// id > 10 matches ~everything; stats should reject the index.
	rows, _, b := run(t, cat, "SELECT id FROM indexed WHERE id > 10")
	if len(rows) != 4989 {
		t.Fatalf("rows=%d", len(rows))
	}
	if b.RowsScanned != 5000 {
		t.Errorf("expected full heap scan, rowsScanned=%d", b.RowsScanned)
	}
}

func TestJoinRawWithRaw(t *testing.T) {
	cat := setup(t, 100)
	rows, cols, _ := run(t, cat,
		"SELECT r.id, d.label FROM raw r JOIN dim d ON r.grp = d.grp WHERE r.id < 5 ORDER BY r.id")
	if len(rows) != 5 {
		t.Fatalf("rows=%v", rows)
	}
	if cols[1].Name != "label" {
		t.Errorf("cols=%v", cols)
	}
	for i, r := range rows {
		if r[0].I != int64(i) || r[1].S != fmt.Sprintf("group-%d", i%5) {
			t.Errorf("row %d=%v", i, r)
		}
	}
}

func TestJoinModesMixed(t *testing.T) {
	cat := setup(t, 500)
	rows, _, _ := run(t, cat,
		"SELECT COUNT(*) FROM loaded l JOIN dim d ON l.grp = d.grp")
	if len(rows) != 1 || rows[0][0].I != 500 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestLeftJoin(t *testing.T) {
	cat := setup(t, 20)
	// dim only has groups 0..4; raw has grp 0..4 too, so fabricate a miss
	// with an ON that can't match for odd ids.
	rows, _, _ := run(t, cat,
		"SELECT r.id, d.label FROM raw r LEFT JOIN dim d ON r.grp = d.grp AND r.id < 10 ORDER BY r.id")
	if len(rows) != 20 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[5][1].IsNull() || !rows[15][1].IsNull() {
		t.Errorf("outer semantics wrong: %v / %v", rows[5], rows[15])
	}
}

func TestCrossJoin(t *testing.T) {
	cat := setup(t, 10)
	rows, _, _ := run(t, cat, "SELECT r.id, d.grp FROM raw r CROSS JOIN dim d")
	if len(rows) != 50 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestNonEquiJoin(t *testing.T) {
	cat := setup(t, 10)
	rows, _, _ := run(t, cat, "SELECT r.id, d.grp FROM raw r JOIN dim d ON r.grp > d.grp WHERE r.id = 4")
	// id=4 has grp 4; dim grps 0..3 are smaller -> 4 rows.
	if len(rows) != 4 {
		t.Fatalf("rows=%v", rows)
	}
}

func TestOrderByAliasAndPosition(t *testing.T) {
	cat := setup(t, 50)
	a, _, _ := run(t, cat, "SELECT id * 2 AS dbl FROM raw ORDER BY dbl DESC LIMIT 3")
	bp, _, _ := run(t, cat, "SELECT id * 2 AS dbl FROM raw ORDER BY 1 DESC LIMIT 3")
	if len(a) != 3 || a[0][0].I != 98 {
		t.Fatalf("alias order=%v", a)
	}
	for i := range a {
		if !value.Equal(a[i][0], bp[i][0]) {
			t.Fatal("positional order differs from alias order")
		}
	}
}

func TestOrderByHiddenColumn(t *testing.T) {
	cat := setup(t, 50)
	rows, cols, _ := run(t, cat, "SELECT name FROM raw ORDER BY id DESC LIMIT 2")
	if len(cols) != 1 {
		t.Fatalf("hidden column leaked: %v", cols)
	}
	if rows[0][0].S != "n49" || rows[1][0].S != "n48" {
		t.Fatalf("rows=%v", rows)
	}
}

func TestAggregateExpressions(t *testing.T) {
	cat := setup(t, 100)
	rows, _, _ := run(t, cat, "SELECT SUM(id) / COUNT(*) FROM raw")
	if len(rows) != 1 || rows[0][0].I != 49 { // 4950/100
		t.Fatalf("rows=%v", rows)
	}
	rows2, _, _ := run(t, cat, "SELECT grp, MAX(score) - MIN(score) FROM raw GROUP BY grp ORDER BY grp LIMIT 1")
	if len(rows2) != 1 || rows2[0][1].F != 23.75 { // ids 0..95 step5 -> (95-0)/4
		t.Fatalf("rows2=%v", rows2)
	}
}

func TestCountDistinct(t *testing.T) {
	cat := setup(t, 100)
	rows, _, _ := run(t, cat, "SELECT COUNT(DISTINCT grp) FROM raw")
	if rows[0][0].I != 5 {
		t.Fatalf("count distinct=%v", rows)
	}
}

func TestPlannerErrors(t *testing.T) {
	cat := setup(t, 10)
	bad := []string{
		"SELECT x FROM raw",                                   // unknown column
		"SELECT id FROM nosuch",                               // unknown table
		"SELECT id FROM raw, raw",                             // parser rejects comma join; still an error
		"SELECT id FROM raw r JOIN raw r ON r.id = r.id",      // duplicate alias
		"SELECT id FROM raw HAVING COUNT(*) > 1 WHERE id = 1", // syntax
		"SELECT name FROM raw GROUP BY grp",                   // name not in GROUP BY
		"SELECT SUM(*) FROM raw",                              // SUM(*)
		"SELECT id FROM raw HAVING id > 1",                    // HAVING without aggregation
		"SELECT DISTINCT name FROM raw ORDER BY id",           // DISTINCT + hidden order col
		"SELECT id FROM raw ORDER BY 5",                       // position out of range
	}
	for _, q := range bad {
		sel, err := sql.Parse(q)
		if err != nil {
			continue // parse-level rejection is fine
		}
		var b metrics.Breakdown
		if plan, err := Build(sel, cat, &b); err == nil {
			plan.Close()
			t.Errorf("query %q planned successfully", q)
		}
	}
}

func TestSelectivityOrderingUsesStats(t *testing.T) {
	cat := setup(t, 2000)
	// Warm raw stats on both columns.
	run(t, cat, "SELECT id, grp FROM raw WHERE id >= 0 AND grp >= 0")
	// Now both conjuncts have stats; ensure plan still executes correctly
	// with reordered predicates.
	rows, _, _ := run(t, cat, "SELECT id FROM raw WHERE grp = 1 AND id < 100")
	if len(rows) != 20 {
		t.Fatalf("rows=%d", len(rows))
	}
}

func TestConstantConjunctStaysResidual(t *testing.T) {
	cat := setup(t, 30)
	rows, _, _ := run(t, cat, "SELECT id FROM raw WHERE 1 = 1 AND id < 3")
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	rows2, _, _ := run(t, cat, "SELECT id FROM raw WHERE 1 = 2")
	if len(rows2) != 0 {
		t.Fatalf("rows2=%d", len(rows2))
	}
}

var _ engine.Operator = (*engine.ValuesOp)(nil)

// explain builds the query and returns its EXPLAIN rendering.
func explain(t *testing.T, cat *schema.Catalog, q string) string {
	t.Helper()
	sel, err := sql.Parse(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	var b metrics.Breakdown
	plan, err := Build(sel, cat, &b)
	if err != nil {
		t.Fatalf("plan %q: %v", q, err)
	}
	defer plan.Close()
	return plan.ExplainText
}

func TestExplainSurfacesErrorPolicy(t *testing.T) {
	cat := setup(t, 100)

	// Default policy (null, no cap) stays quiet: the classic label shape.
	out := explain(t, cat, "SELECT id FROM raw WHERE id < 10")
	if strings.Contains(out, "on_error") {
		t.Errorf("default-policy EXPLAIN mentions on_error:\n%s", out)
	}

	entry, ok := cat.Lookup("raw")
	if !ok {
		t.Fatal("raw table missing from catalog")
	}
	tbl := entry.Handle.(*core.Table)

	// A non-default policy changes result rows, so EXPLAIN must surface it.
	tbl.SetErrorPolicy(core.OnErrorSkip, 10)
	out = explain(t, cat, "SELECT id FROM raw WHERE id < 10")
	if !strings.Contains(out, "on_error=skip") || !strings.Contains(out, "max_errors=10") {
		t.Errorf("EXPLAIN missing on_error=skip max_errors=10:\n%s", out)
	}

	// fail with no cap: only the policy is shown.
	tbl.SetErrorPolicy(core.OnErrorFail, 0)
	out = explain(t, cat, "SELECT id FROM raw WHERE id < 10")
	if !strings.Contains(out, "on_error=fail") {
		t.Errorf("EXPLAIN missing on_error=fail:\n%s", out)
	}
	if strings.Contains(out, "max_errors") {
		t.Errorf("EXPLAIN shows max_errors with no cap set:\n%s", out)
	}

	// Back to the default: quiet again (policy changes are live).
	tbl.SetErrorPolicy(core.OnErrorNull, 0)
	out = explain(t, cat, "SELECT id FROM raw WHERE id < 10")
	if strings.Contains(out, "on_error") {
		t.Errorf("restored-default EXPLAIN mentions on_error:\n%s", out)
	}
}
