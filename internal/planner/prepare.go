package planner

import (
	"context"

	"nodb/internal/metrics"
	"nodb/internal/schema"
	"nodb/internal/sql"
)

// Prepared is a plan skeleton: a parsed statement with its FROM/JOIN tables
// resolved against the catalog, stars expanded and output names fixed. The
// expensive, parameter-independent front half of planning runs once; Build
// then binds `?` arguments and instantiates a fresh operator tree per
// execution (operators are stateful and single-use, and bound values feed
// selectivity estimation and access-path choice, so that half cannot be
// shared).
//
// A Prepared is immutable and safe for concurrent Build calls. It snapshots
// catalog entries at preparation time; callers that mutate the catalog
// (register/drop) must discard prepared statements built before the change.
type Prepared struct {
	sel     *sql.Select
	cat     *schema.Catalog
	quals   []string
	entries []*schema.Table
	items   []sql.SelectItem // star-expanded select list
	names   []string         // output column names (pre-bind, pre-rewrite)
	noVec   bool             // force row-at-a-time expression evaluation
}

// Prepare resolves and validates a parsed statement against the catalog,
// returning the reusable plan skeleton.
func Prepare(sel *sql.Select, cat *schema.Catalog) (*Prepared, error) {
	pb := &builder{cat: cat}
	if err := pb.resolveTables(sel); err != nil {
		return nil, err
	}
	items, err := pb.expandStars(sel.Items)
	if err != nil {
		return nil, err
	}
	p := &Prepared{sel: sel, cat: cat, items: items}
	p.names = make([]string, len(items))
	for i, it := range items {
		p.names[i] = outputName(it)
	}
	for _, t := range pb.tables {
		p.quals = append(p.quals, t.qual)
		p.entries = append(p.entries, t.entry)
	}
	return p, nil
}

// DisableVec forces row-at-a-time expression evaluation for every plan
// built from this statement. Results are identical with or without
// vectorized evaluation; the switch exists for differential testing and
// A/B measurement. Call before the first Build.
func (p *Prepared) DisableVec() { p.noVec = true }

// NumParams returns the number of `?` placeholders the statement carries.
func (p *Prepared) NumParams() int { return p.sel.NumParams }

// Explain reports whether the statement is an EXPLAIN.
func (p *Prepared) Explain() bool { return p.sel.Explain }

// Tables returns the resolved catalog entries the statement references, in
// FROM/JOIN order (duplicates possible for self-joins). Callers use this for
// refresh and lifetime pinning.
func (p *Prepared) Tables() []*schema.Table { return p.entries }

// Build binds params (one expression per `?`, matched by position) and
// compiles an executable plan. ctx, when non-nil, makes the plan's leaf
// scans cancellable: once ctx is done, Next/NextBatch return ctx.Err()
// within one chunk (raw) or page (heap) of work, and parallel scan
// pipelines abandon their read-ahead.
func (p *Prepared) Build(ctx context.Context, b *metrics.Breakdown, params []sql.Expr) (*Plan, error) {
	sel, items, err := sql.BindSelect(p.sel, p.items, params)
	if err != nil {
		return nil, err
	}
	pb := &builder{cat: p.cat, b: b, ctx: ctx, noVec: p.noVec}
	for i := range p.entries {
		pb.tables = append(pb.tables, &tableSrc{
			qual: p.quals[i], entry: p.entries[i], refSet: map[int]bool{},
		})
	}
	return pb.buildResolved(sel, items, p.names)
}
