package planner

import (
	"fmt"
	"strings"

	"nodb/internal/engine"
	"nodb/internal/expr"
	"nodb/internal/sql"
	"nodb/internal/value"
)

// anyAggregate reports whether the query computes aggregates.
func anyAggregate(items []sql.SelectItem, sel *sql.Select) bool {
	for _, it := range items {
		if expr.ContainsAggregate(it.Expr) {
			return true
		}
	}
	if sel.Having != nil && expr.ContainsAggregate(sel.Having) {
		return true
	}
	for _, o := range sel.OrderBy {
		if expr.ContainsAggregate(o.Expr) {
			return true
		}
	}
	return false
}

// collectAggCalls gathers the distinct aggregate calls (by rendered form)
// from an expression tree.
func collectAggCalls(e sql.Expr, calls []sql.FuncCall) []sql.FuncCall {
	switch x := e.(type) {
	case sql.FuncCall:
		if expr.IsAggregate(x.Name) {
			for _, c := range calls {
				if c.String() == x.String() {
					return calls
				}
			}
			return append(calls, x)
		}
		for _, a := range x.Args {
			calls = collectAggCalls(a, calls)
		}
	case sql.BinaryExpr:
		calls = collectAggCalls(x.Left, calls)
		calls = collectAggCalls(x.Right, calls)
	case sql.UnaryExpr:
		calls = collectAggCalls(x.X, calls)
	case sql.IsNullExpr:
		calls = collectAggCalls(x.X, calls)
	case sql.InExpr:
		calls = collectAggCalls(x.X, calls)
		for _, a := range x.List {
			calls = collectAggCalls(a, calls)
		}
	case sql.BetweenExpr:
		calls = collectAggCalls(x.X, calls)
		calls = collectAggCalls(x.Lo, calls)
		calls = collectAggCalls(x.Hi, calls)
	case sql.LikeExpr:
		calls = collectAggCalls(x.X, calls)
		calls = collectAggCalls(x.Pattern, calls)
	}
	return calls
}

// rewriteOverAgg replaces group-key subtrees and aggregate calls with
// references to the aggregation operator's output columns.
func rewriteOverAgg(e sql.Expr, keys []sql.Expr, calls []sql.FuncCall) sql.Expr {
	es := e.String()
	for i, k := range keys {
		if es == k.String() {
			if cr, ok := k.(sql.ColumnRef); ok {
				return cr
			}
			return sql.ColumnRef{Name: fmt.Sprintf("#key%d", i)}
		}
	}
	if fc, ok := e.(sql.FuncCall); ok && expr.IsAggregate(fc.Name) {
		for i, c := range calls {
			if c.String() == es {
				return sql.ColumnRef{Name: fmt.Sprintf("#agg%d", i)}
			}
		}
	}
	switch x := e.(type) {
	case sql.BinaryExpr:
		return sql.BinaryExpr{Op: x.Op,
			Left:  rewriteOverAgg(x.Left, keys, calls),
			Right: rewriteOverAgg(x.Right, keys, calls)}
	case sql.UnaryExpr:
		return sql.UnaryExpr{Op: x.Op, X: rewriteOverAgg(x.X, keys, calls)}
	case sql.IsNullExpr:
		return sql.IsNullExpr{X: rewriteOverAgg(x.X, keys, calls), Not: x.Not}
	case sql.InExpr:
		out := sql.InExpr{X: rewriteOverAgg(x.X, keys, calls), Not: x.Not}
		for _, a := range x.List {
			out.List = append(out.List, rewriteOverAgg(a, keys, calls))
		}
		return out
	case sql.BetweenExpr:
		return sql.BetweenExpr{
			X:   rewriteOverAgg(x.X, keys, calls),
			Lo:  rewriteOverAgg(x.Lo, keys, calls),
			Hi:  rewriteOverAgg(x.Hi, keys, calls),
			Not: x.Not,
		}
	case sql.LikeExpr:
		return sql.LikeExpr{
			X:       rewriteOverAgg(x.X, keys, calls),
			Pattern: rewriteOverAgg(x.Pattern, keys, calls),
			Not:     x.Not,
		}
	case sql.FuncCall:
		out := sql.FuncCall{Name: x.Name, Distinct: x.Distinct}
		for _, a := range x.Args {
			out.Args = append(out.Args, rewriteOverAgg(a, keys, calls))
		}
		return out
	default:
		return e
	}
}

// buildAggregation inserts the HashAgg operator and rewrites the remaining
// expressions to reference its output.
func (pb *builder) buildAggregation(root engine.Operator, sel *sql.Select, items []sql.SelectItem) (engine.Operator, *expr.Env, []sql.SelectItem, error) {
	pb.aggKeys = sel.GroupBy

	// Collect distinct aggregate calls from everything evaluated above the
	// aggregation.
	var calls []sql.FuncCall
	for _, it := range items {
		calls = collectAggCalls(it.Expr, calls)
	}
	if sel.Having != nil {
		calls = collectAggCalls(sel.Having, calls)
	}
	for _, o := range sel.OrderBy {
		calls = collectAggCalls(o.Expr, calls)
	}
	pb.aggCalls = calls

	// Compile group keys over the base environment.
	var keyNodes []expr.Node
	aggEnv := expr.NewEnv()
	for i, k := range pb.aggKeys {
		n, err := expr.Compile(k, pb.env)
		if err != nil {
			return nil, nil, nil, err
		}
		keyNodes = append(keyNodes, n)
		if cr, ok := k.(sql.ColumnRef); ok {
			qual, name, kerr := pb.ownerOf(cr)
			if kerr != nil {
				return nil, nil, nil, kerr
			}
			aggEnv.Add(qual, name, n.Kind())
		} else {
			aggEnv.Add("", fmt.Sprintf("#key%d", i), n.Kind())
		}
	}

	// Compile aggregate arguments and build the specs.
	var specs []engine.AggSpec
	for i, c := range calls {
		spec := engine.AggSpec{Name: c.Name, Distinct: c.Distinct}
		switch {
		case len(c.Args) == 1:
			if _, isStar := c.Args[0].(sql.Star); isStar {
				if c.Name != "COUNT" {
					return nil, nil, nil, fmt.Errorf("planner: %s(*) is not valid", c.Name)
				}
				spec.Star = true
			} else {
				n, err := expr.Compile(c.Args[0], pb.env)
				if err != nil {
					return nil, nil, nil, err
				}
				spec.Arg = n
			}
		default:
			return nil, nil, nil, fmt.Errorf("planner: %s takes exactly one argument", c.Name)
		}
		kind := expr.AggKind(c.Name, argKind(spec.Arg))
		aggEnv.Add("", fmt.Sprintf("#agg%d", i), kind)
		specs = append(specs, spec)
	}

	agg := engine.NewHashAgg(root, keyNodes, specs, pb.b)
	// Aggregation over a bare raw scan: push the grouping work into the
	// scan's chunk workers so GROUP BY scales with the pipeline instead of
	// serializing in this one consumer.
	pb.aggPushed = agg.TryPushdown()

	// Rewrite the select items to reference the aggregation output.
	out := make([]sql.SelectItem, len(items))
	for i, it := range items {
		out[i] = sql.SelectItem{Expr: rewriteOverAgg(it.Expr, pb.aggKeys, calls), Alias: it.Alias}
	}
	return agg, aggEnv, out, nil
}

func argKind(n expr.Node) value.Kind {
	if n == nil {
		return value.KindNull
	}
	return n.Kind()
}

// ownerOf finds the qualified owner of a column reference.
func (pb *builder) ownerOf(c sql.ColumnRef) (qual, name string, err error) {
	q := strings.ToLower(c.Table)
	nm := strings.ToLower(c.Name)
	for _, t := range pb.tables {
		if q != "" && t.qual != q {
			continue
		}
		if t.entry.Schema.Index(nm) >= 0 {
			return t.qual, nm, nil
		}
	}
	return "", "", fmt.Errorf("planner: unknown column %q in GROUP BY", c.String())
}
