package planner

import (
	"fmt"
	"strings"
)

// enode is one node of the EXPLAIN tree, mirroring the operator tree the
// builder constructs.
type enode struct {
	label string
	kids  []*enode
}

func en(label string, kids ...*enode) *enode { return &enode{label: label, kids: kids} }

// wrap puts a new node above the current root.
func wrap(label string, child *enode) *enode { return &enode{label: label, kids: []*enode{child}} }

// render writes the tree with two-space indentation.
func (n *enode) render(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(n.label)
	sb.WriteByte('\n')
	for _, k := range n.kids {
		k.render(sb, depth+1)
	}
}

// String renders the whole plan.
func (n *enode) String() string {
	var sb strings.Builder
	n.render(&sb, 0)
	return sb.String()
}

// exprList renders a list of expressions compactly.
func exprList[T fmt.Stringer](xs []T) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.String()
	}
	return strings.Join(parts, ", ")
}
