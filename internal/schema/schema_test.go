package schema

import (
	"strings"
	"testing"

	"nodb/internal/value"
)

func TestNewAndLookup(t *testing.T) {
	s, err := New([]Column{{"id", value.KindInt}, {"Name", value.KindText}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d", s.Len())
	}
	if s.Index("id") != 0 || s.Index("name") != 1 || s.Index("NAME") != 1 {
		t.Error("case-insensitive Index failed")
	}
	if s.Index("missing") != -1 {
		t.Error("missing column should be -1")
	}
	if s.Col(1).Name != "Name" {
		t.Error("Col(1) wrong")
	}
	if got := len(s.Cols()); got != 2 {
		t.Errorf("Cols len=%d", got)
	}
}

func TestNewRejectsBadColumns(t *testing.T) {
	if _, err := New([]Column{{"", value.KindInt}}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New([]Column{{"a", value.KindInt}, {"A", value.KindText}}); err == nil {
		t.Error("duplicate (case-insensitive) name accepted")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew did not panic")
		}
	}()
	MustNew([]Column{{"", value.KindInt}})
}

func TestParseSpecRoundTrip(t *testing.T) {
	s, err := ParseSpec("id:int, name:text ,score:float,ok:bool,d:date")
	if err != nil {
		t.Fatal(err)
	}
	want := []value.Kind{value.KindInt, value.KindText, value.KindFloat, value.KindBool, value.KindDate}
	for i, k := range want {
		if s.Col(i).Kind != k {
			t.Errorf("col %d kind=%v, want %v", i, s.Col(i).Kind, k)
		}
	}
	// Round-trip through String.
	s2, err := ParseSpec(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if s2.String() != s.String() {
		t.Errorf("round trip %q != %q", s2.String(), s.String())
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, spec := range []string{"", "  ", "id", "id:blob", "id:int,:text"} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

func TestCatalog(t *testing.T) {
	c := NewCatalog()
	s := MustNew([]Column{{"id", value.KindInt}})
	if err := c.Register(&Table{Name: "T1", Schema: s, Mode: AccessInSitu}); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(&Table{Name: "t1", Schema: s}); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := c.Register(&Table{Name: ""}); err == nil {
		t.Error("empty name accepted")
	}
	got, ok := c.Lookup("T1")
	if !ok || got.Name != "T1" {
		t.Fatal("Lookup failed")
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Error("phantom table")
	}
	if names := c.Names(); len(names) != 1 || !strings.EqualFold(names[0], "t1") {
		t.Errorf("Names=%v", names)
	}
	if !c.Drop("t1") || c.Drop("t1") {
		t.Error("Drop semantics wrong")
	}
}

func TestAccessModeString(t *testing.T) {
	if AccessInSitu.String() != "in-situ" || AccessBaseline.String() != "baseline" ||
		AccessLoadFirst.String() != "load-first" {
		t.Error("mode names wrong")
	}
	if AccessMode(9).String() != "AccessMode(9)" {
		t.Error("unknown mode name wrong")
	}
}
