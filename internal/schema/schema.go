// Package schema describes relations: ordered, typed columns, plus the
// catalog that maps table names to their registration (raw file or loaded
// heap). The schema layer is storage-agnostic; the catalog only records how
// a table is accessed, not the structures behind it.
package schema

import (
	"fmt"
	"strings"

	"nodb/internal/value"
)

// Column is one attribute of a relation.
type Column struct {
	Name string
	Kind value.Kind
}

// Schema is an ordered list of columns with fast name lookup. The zero value
// is an empty schema; use New to build one with validation.
type Schema struct {
	cols   []Column
	byName map[string]int
}

// New builds a schema, rejecting duplicate or empty column names. Column
// name lookup is case-insensitive.
func New(cols []Column) (*Schema, error) {
	s := &Schema{cols: append([]Column(nil), cols...), byName: make(map[string]int, len(cols))}
	for i, c := range cols {
		if c.Name == "" {
			return nil, fmt.Errorf("schema: column %d has empty name", i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.byName[key]; dup {
			return nil, fmt.Errorf("schema: duplicate column name %q", c.Name)
		}
		s.byName[key] = i
	}
	return s, nil
}

// MustNew is New but panics on error; for tests and literals.
func MustNew(cols []Column) *Schema {
	s, err := New(cols)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns column i.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Cols returns a copy of the column list.
func (s *Schema) Cols() []Column { return append([]Column(nil), s.cols...) }

// Index returns the position of the named column, or -1.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[strings.ToLower(name)]; ok {
		return i
	}
	return -1
}

// String renders the schema as "name:TYPE,...", the format accepted by ParseSpec.
func (s *Schema) String() string {
	parts := make([]string, len(s.cols))
	for i, c := range s.cols {
		parts[i] = fmt.Sprintf("%s:%s", c.Name, c.Kind)
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a compact schema spec like "id:int,name:text,score:float".
func ParseSpec(spec string) (*Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("schema: empty spec")
	}
	parts := strings.Split(spec, ",")
	cols := make([]Column, 0, len(parts))
	for _, p := range parts {
		nv := strings.SplitN(p, ":", 2)
		if len(nv) != 2 {
			return nil, fmt.Errorf("schema: bad column spec %q (want name:type)", p)
		}
		k, err := value.ParseKind(nv[1])
		if err != nil {
			return nil, fmt.Errorf("schema: column %q: %w", nv[0], err)
		}
		cols = append(cols, Column{Name: strings.TrimSpace(nv[0]), Kind: k})
	}
	return New(cols)
}

// AccessMode says how a registered table is physically accessed.
type AccessMode uint8

// Access modes for catalog entries.
const (
	// AccessInSitu is the PostgresRaw path: queries run directly over the
	// raw file through the adaptive scan (positional map, cache, stats).
	AccessInSitu AccessMode = iota
	// AccessBaseline is the "external files" path: every query tokenizes and
	// parses the whole raw file with no auxiliary structures.
	AccessBaseline
	// AccessLoadFirst is the conventional DBMS path: the file is fully
	// loaded into binary heap storage before the first query runs.
	AccessLoadFirst
)

// String names the access mode.
func (m AccessMode) String() string {
	switch m {
	case AccessInSitu:
		return "in-situ"
	case AccessBaseline:
		return "baseline"
	case AccessLoadFirst:
		return "load-first"
	default:
		return fmt.Sprintf("AccessMode(%d)", uint8(m))
	}
}

// Table is a catalog entry.
type Table struct {
	Name   string
	Schema *Schema
	Mode   AccessMode
	Path   string // raw file path (in-situ/baseline) or original source (load-first)

	// Handle is an opaque pointer owned by the engine layer: *core.Table
	// (single file) or *core.ShardedTable (glob location) for raw access
	// modes, *storage.Table for load-first tables. The catalog does not
	// interpret it.
	Handle any
}

// Catalog maps table names to registrations. Not safe for concurrent
// mutation; the public nodb.DB serializes catalog changes.
type Catalog struct {
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Register adds a table; the name must be unused.
func (c *Catalog) Register(t *Table) error {
	if t.Name == "" {
		return fmt.Errorf("schema: table with empty name")
	}
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("schema: table %q already registered", t.Name)
	}
	c.tables[key] = t
	return nil
}

// Lookup finds a table by name (case-insensitive).
func (c *Catalog) Lookup(name string) (*Table, bool) {
	t, ok := c.tables[strings.ToLower(name)]
	return t, ok
}

// Drop removes a table by name, reporting whether it existed.
func (c *Catalog) Drop(name string) bool {
	key := strings.ToLower(name)
	_, ok := c.tables[key]
	delete(c.tables, key)
	return ok
}

// Names returns the registered table names (unordered).
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	return out
}
