// Package harness implements the paper's experiments: one runner per figure
// and demo scenario, each producing a Report with the same rows/series the
// paper's panels show. The harness drives the system exclusively through
// the public nodb API, so it doubles as an integration exerciser.
package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"nodb"
	"nodb/internal/datagen"
)

// Config sizes an experiment. Zero fields take defaults.
type Config struct {
	Dir     string // workspace for generated files; default: a temp dir
	Rows    int    // rows in the generated raw file; default 50_000
	Attrs   int    // attributes in the generated file; default 10
	Queries int    // length of the query sequence; default 10
	Seed    int64
}

func (c Config) fill() Config {
	if c.Rows <= 0 {
		c.Rows = 50_000
	}
	if c.Attrs <= 0 {
		c.Attrs = 10
	}
	if c.Queries <= 0 {
		c.Queries = 10
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
	return c
}

// Report is one experiment's output table.
type Report struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = fmt.Sprintf("%.3f", float64(v)/float64(time.Millisecond))
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	r.Rows = append(r.Rows, row)
}

// String renders the report as an aligned table with title and notes.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Headers)
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteByte('\n')
	for _, row := range r.Rows {
		writeRow(row)
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// genFile writes the experiment's raw file and returns its path, spec and
// size.
func genFile(cfg Config, name string, spec datagen.Spec) (string, int64, error) {
	path := filepath.Join(cfg.Dir, fmt.Sprintf("%s-%d-%d-%d.csv", name, cfg.Rows, cfg.Attrs, cfg.Seed))
	n, err := spec.WriteFile(path)
	if err != nil {
		return "", 0, err
	}
	return path, n, nil
}

// addStats accumulates query stats.
func addStats(dst *nodb.QueryStats, s nodb.QueryStats) {
	dst.Total += s.Total
	dst.IO += s.IO
	dst.Tokenizing += s.Tokenizing
	dst.Parsing += s.Parsing
	dst.Convert += s.Convert
	dst.NoDB += s.NoDB
	dst.Processing += s.Processing
	dst.Load += s.Load
	dst.BytesRead += s.BytesRead
	dst.BytesSkipped += s.BytesSkipped
	dst.RowsScanned += s.RowsScanned
	dst.FieldsTokenized += s.FieldsTokenized
	dst.FieldsConverted += s.FieldsConverted
	dst.CacheHitFields += s.CacheHitFields
	dst.MapJumpFields += s.MapJumpFields
}

// ms renders a duration in milliseconds.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond))
}

// All runs every experiment in paper order.
func All(cfg Config) ([]*Report, error) {
	type runner struct {
		name string
		fn   func(Config) (*Report, error)
	}
	runners := []runner{
		{"F2-MONITOR", Fig2Monitor},
		{"F3-BREAKDOWN", Fig3Breakdown},
		{"ADAPT-EPOCH", AdaptEpochs},
		{"UPDATES", UpdatesScenario},
		{"RACE", Race},
		{"SWEEP-ATTRS", func(c Config) (*Report, error) { return SweepAttrs(c, nil) }},
		{"SWEEP-WIDTH", func(c Config) (*Report, error) { return SweepWidth(c, nil) }},
		{"SWEEP-BUDGET", func(c Config) (*Report, error) { return SweepBudget(c, nil) }},
		{"SWEEP-MAPGRAIN", func(c Config) (*Report, error) { return SweepMapGrain(c, nil) }},
		{"ABLATION", Ablation},
	}
	var out []*Report
	for _, r := range runners {
		rep, err := r.fn(cfg)
		if err != nil {
			return out, fmt.Errorf("harness: %s: %w", r.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// Run dispatches one experiment by ID ("F2", "F3", "ADAPT", "UPDATES",
// "RACE", "SWEEP-ATTRS", "SWEEP-WIDTH", "SWEEP-BUDGET", "ABLATION", "ALL").
func Run(id string, cfg Config) ([]*Report, error) {
	switch strings.ToUpper(id) {
	case "ALL", "":
		return All(cfg)
	case "F2", "F2-MONITOR":
		r, err := Fig2Monitor(cfg)
		return wrap(r, err)
	case "F3", "F3-BREAKDOWN":
		r, err := Fig3Breakdown(cfg)
		return wrap(r, err)
	case "ADAPT", "ADAPT-EPOCH":
		r, err := AdaptEpochs(cfg)
		return wrap(r, err)
	case "UPDATES":
		r, err := UpdatesScenario(cfg)
		return wrap(r, err)
	case "RACE":
		r, err := Race(cfg)
		return wrap(r, err)
	case "SWEEP-ATTRS":
		r, err := SweepAttrs(cfg, nil)
		return wrap(r, err)
	case "SWEEP-WIDTH":
		r, err := SweepWidth(cfg, nil)
		return wrap(r, err)
	case "SWEEP-BUDGET":
		r, err := SweepBudget(cfg, nil)
		return wrap(r, err)
	case "SWEEP-MAPGRAIN":
		r, err := SweepMapGrain(cfg, nil)
		return wrap(r, err)
	case "ABLATION":
		r, err := Ablation(cfg)
		return wrap(r, err)
	default:
		return nil, fmt.Errorf("harness: unknown experiment %q", id)
	}
}

func wrap(r *Report, err error) ([]*Report, error) {
	if err != nil {
		return nil, err
	}
	return []*Report{r}, nil
}
