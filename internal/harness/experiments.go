package harness

import (
	"fmt"
	"os"
	"time"

	"nodb"
	"nodb/internal/datagen"
	"nodb/internal/value"
	"nodb/internal/workload"
)

// stdQuery is the canonical select-project query over the generated int
// table: two attributes projected, a 25% filter on the first.
func stdQuery(attrs int) string {
	a := attrs / 3
	b := 2 * attrs / 3
	if b == a {
		b = a + 1
	}
	if b >= attrs {
		b = attrs - 1
	}
	return fmt.Sprintf("SELECT a%d, a%d FROM t WHERE a%d < 250", a, b, a)
}

// Fig3Breakdown reproduces Figure 3 ("Query Execution Breakdown"): the same
// query sequence executed by the conventional load-first engine
// (PostgreSQL stand-in), the external-files Baseline, and PostgresRaw
// (positional map + cache), with per-category cost totals.
func Fig3Breakdown(cfg Config) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, _, err := genFile(cfg, "fig3", spec)
	if err != nil {
		return nil, err
	}
	q := stdQuery(cfg.Attrs)

	rep := &Report{
		ID:    "F3-BREAKDOWN",
		Title: fmt.Sprintf("execution breakdown, %d queries (%s)", cfg.Queries, q),
		Headers: []string{"system", "load_ms", "io_ms", "tokenize_ms", "parse_ms",
			"convert_ms", "nodb_ms", "process_ms", "total_ms", "tokenized", "converted", "cache_hits"},
	}

	type system struct {
		name  string
		setup func(db *nodb.DB) (time.Duration, error)
	}
	systems := []system{
		{"postgresql(load-first)", func(db *nodb.DB) (time.Duration, error) {
			init, _, err := db.Load("t", path, spec.SchemaSpec(), nodb.ProfilePostgres)
			return init, err
		}},
		{"baseline(external-files)", func(db *nodb.DB) (time.Duration, error) {
			return 0, db.RegisterBaseline("t", path, spec.SchemaSpec())
		}},
		{"postgresraw(PM+C)", func(db *nodb.DB) (time.Duration, error) {
			return 0, db.RegisterRaw("t", path, spec.SchemaSpec(), nil)
		}},
	}

	for _, sys := range systems {
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		initTime, err := sys.setup(db)
		if err != nil {
			db.Close()
			return nil, err
		}
		var total nodb.QueryStats
		total.Load = initTime
		for i := 0; i < cfg.Queries; i++ {
			res, err := db.Query(q)
			if err != nil {
				db.Close()
				return nil, err
			}
			addStats(&total, res.Stats)
		}
		rep.AddRow(sys.name, ms(total.Load), ms(total.IO), ms(total.Tokenizing),
			ms(total.Parsing), ms(total.Convert), ms(total.NoDB), ms(total.Processing),
			ms(total.Load+total.IO+total.Tokenizing+total.Parsing+total.Convert+total.NoDB+total.Processing),
			total.FieldsTokenized, total.FieldsConverted, total.CacheHitFields)
		db.Close()
	}
	rep.Notes = append(rep.Notes,
		"expected shape: baseline pays tokenize+convert every query; postgresraw pays them once then serves from cache;",
		"the load-first engine pays a large one-time Load bar, then queries are I/O+Processing only.")
	return rep, nil
}

// Fig2Monitor reproduces the Figure 2 monitoring panel over a shifting
// workload under tight budgets: per query, the positional map and cache
// occupancy, hits and evictions.
func Fig2Monitor(cfg Config) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, size, err := genFile(cfg, "fig2", spec)
	if err != nil {
		return nil, err
	}
	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	// Budgets sized to hold roughly a third of the file's structures, so
	// the workload shift forces evictions (the panel's interesting regime).
	opts := &nodb.RawOptions{PosMapBudget: size / 3, CacheBudget: size / 3}
	if err := db.RegisterRaw("t", path, spec.SchemaSpec(), opts); err != nil {
		return nil, err
	}

	qs := workload.ShiftingWindows("t", spec.Schema(), 3, cfg.Queries/3+1, cfg.Seed)
	if len(qs) > cfg.Queries {
		qs = qs[:cfg.Queries]
	}
	rep := &Report{
		ID:    "F2-MONITOR",
		Title: fmt.Sprintf("monitoring panel over %d shifting queries, budgets %dB", len(qs), size/3),
		Headers: []string{"q", "epoch", "time_ms", "map_util%", "cache_util%",
			"map_grains", "cache_frags", "map_evict", "cache_evict", "cache_hits"},
	}
	for i, q := range qs {
		res, err := db.Query(q.SQL)
		if err != nil {
			return nil, err
		}
		p, err := db.Panel("t")
		if err != nil {
			return nil, err
		}
		mapU := 0.0
		if p.PosMap.BudgetBytes > 0 {
			mapU = 100 * float64(p.PosMap.UsedBytes) / float64(p.PosMap.BudgetBytes)
		}
		cacheU := 0.0
		if p.Cache.BudgetBytes > 0 {
			cacheU = 100 * float64(p.Cache.UsedBytes) / float64(p.Cache.BudgetBytes)
		}
		rep.AddRow(i+1, q.Epoch, res.Stats.Total, mapU, cacheU,
			p.PosMap.Grains, p.Cache.Fragments, p.PosMap.Evictions, p.Cache.Evictions,
			res.Stats.CacheHitFields)
	}
	p, _ := db.Panel("t")
	rep.Notes = append(rep.Notes, "final panel:\n"+p.String())
	return rep, nil
}

// AdaptEpochs reproduces the Part II "query adaptation" scenario: epochs of
// select-project queries over shifting file regions; response times drop
// within an epoch and jump at epoch boundaries while the structures
// re-adapt.
func AdaptEpochs(cfg Config) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, _, err := genFile(cfg, "adapt", spec)
	if err != nil {
		return nil, err
	}
	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.RegisterRaw("t", path, spec.SchemaSpec(), nil); err != nil {
		return nil, err
	}
	nEpochs := 3
	perEpoch := cfg.Queries/nEpochs + 1
	qs := workload.ShiftingWindows("t", spec.Schema(), nEpochs, perEpoch, cfg.Seed)
	rep := &Report{
		ID:    "ADAPT-EPOCH",
		Title: fmt.Sprintf("%d epochs x %d queries, shifting attribute windows", nEpochs, perEpoch),
		Headers: []string{"q", "epoch", "time_ms", "tokenized", "converted",
			"cache_hits", "map_jumps", "bytes_read"},
	}
	for i, q := range qs {
		res, err := db.Query(q.SQL)
		if err != nil {
			return nil, err
		}
		rep.AddRow(i+1, q.Epoch, res.Stats.Total, res.Stats.FieldsTokenized,
			res.Stats.FieldsConverted, res.Stats.CacheHitFields,
			res.Stats.MapJumpFields, res.Stats.BytesRead)
	}
	rep.Notes = append(rep.Notes,
		"expected shape: within an epoch, tokenized/converted collapse after the first queries (structures warm);",
		"each epoch boundary touches new attributes, so raw work jumps and re-adapts.")
	return rep, nil
}

// UpdatesScenario reproduces the Part II "updates" scenario: the raw file
// is appended to (and later rewritten) outside the database; the next query
// sees the changes without any re-registration.
func UpdatesScenario(cfg Config) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, _, err := genFile(cfg, "updates", spec)
	if err != nil {
		return nil, err
	}
	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		return nil, err
	}
	defer db.Close()
	if err := db.RegisterRaw("t", path, spec.SchemaSpec(), nil); err != nil {
		return nil, err
	}
	rep := &Report{
		ID:      "UPDATES",
		Title:   "append and rewrite detection during querying",
		Headers: []string{"step", "action", "count", "time_ms", "ok"},
	}
	count := func() (int64, time.Duration, error) {
		res, err := db.Query("SELECT COUNT(*) FROM t")
		if err != nil {
			return 0, 0, err
		}
		return res.Rows[0][0].(int64), res.Stats.Total, nil
	}

	n0, d0, err := count()
	if err != nil {
		return nil, err
	}
	rep.AddRow(1, "initial count", n0, d0, n0 == int64(cfg.Rows))

	// Warm the structures, then append.
	if _, err := db.Query(stdQuery(cfg.Attrs)); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	extra := 100
	for i := 0; i < extra; i++ {
		for a := 0; a < cfg.Attrs; a++ {
			if a > 0 {
				fmt.Fprint(f, ",")
			}
			fmt.Fprint(f, 7)
		}
		fmt.Fprintln(f)
	}
	f.Close()
	n1, d1, err := count()
	if err != nil {
		return nil, err
	}
	rep.AddRow(2, fmt.Sprintf("append %d rows (text editor)", extra), n1, d1, n1 == int64(cfg.Rows+extra))

	// Rewrite with a new, smaller file ("pointer to a new data file").
	time.Sleep(2 * time.Millisecond)
	small := datagen.IntTable(cfg.Rows/10, cfg.Attrs, cfg.Seed+1)
	if _, err := small.WriteFile(path); err != nil {
		return nil, err
	}
	n2, d2, err := count()
	if err != nil {
		return nil, err
	}
	rep.AddRow(3, "replace file contents", n2, d2, n2 == int64(cfg.Rows/10))
	rep.Notes = append(rep.Notes,
		"appends keep all structures learned for the unchanged prefix; rewrites discard them and re-adapt.")
	return rep, nil
}

// Race reproduces the Part III "friendly race": the same query sequence on
// the same raw file, contested by PostgresRaw and three conventional
// load-first engines. Conventional contestants must finish initialization
// (load, statistics, indexes) before their first query.
func Race(cfg Config) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, _, err := genFile(cfg, "race", spec)
	if err != nil {
		return nil, err
	}
	qs := workload.ShiftingWindows("t", spec.Schema(), 2, cfg.Queries/2+1, cfg.Seed)
	if len(qs) > cfg.Queries {
		qs = qs[:cfg.Queries]
	}

	type contestant struct {
		name  string
		setup func(db *nodb.DB) (time.Duration, error)
	}
	contestants := []contestant{
		{"postgresraw", func(db *nodb.DB) (time.Duration, error) {
			return 0, db.RegisterRaw("t", path, spec.SchemaSpec(), nil)
		}},
		{"postgresql", func(db *nodb.DB) (time.Duration, error) {
			init, _, err := db.Load("t", path, spec.SchemaSpec(), nodb.ProfilePostgres)
			return init, err
		}},
		{"mysql", func(db *nodb.DB) (time.Duration, error) {
			init, _, err := db.Load("t", path, spec.SchemaSpec(), nodb.ProfileMySQL)
			return init, err
		}},
		{"dbms-x", func(db *nodb.DB) (time.Duration, error) {
			init, _, err := db.Load("t", path, spec.SchemaSpec(), nodb.ProfileDBMSX, "a0")
			return init, err
		}},
	}

	rep := &Report{
		ID:      "RACE",
		Title:   fmt.Sprintf("friendly race: data-to-query time over %d queries", len(qs)),
		Headers: []string{"event"},
	}
	cumulative := make([][]time.Duration, len(contestants))
	for ci, c := range contestants {
		rep.Headers = append(rep.Headers, c.name+"_cum_ms")
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		if _, err := c.setup(db); err != nil {
			db.Close()
			return nil, err
		}
		cum := []time.Duration{time.Since(t0)} // after init
		for _, q := range qs {
			if _, err := db.Query(q.SQL); err != nil {
				db.Close()
				return nil, err
			}
			cum = append(cum, time.Since(t0))
		}
		cumulative[ci] = cum
		db.Close()
	}

	events := []string{"init done"}
	for i := range qs {
		events = append(events, fmt.Sprintf("q%d answered", i+1))
	}
	for ei, ev := range events {
		cells := []any{ev}
		for ci := range contestants {
			cells = append(cells, ms(cumulative[ci][ei]))
		}
		rep.AddRow(cells...)
	}

	// The paper's headline: how many queries PostgresRaw answered before
	// each contender finished initializing.
	for ci := 1; ci < len(contestants); ci++ {
		initDone := cumulative[ci][0]
		answered := 0
		for qi := 1; qi < len(cumulative[0]); qi++ {
			if cumulative[0][qi] <= initDone {
				answered = qi
			}
		}
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"postgresraw answered %d/%d queries before %s finished initializing (%.1fms)",
			answered, len(qs), contestants[ci].name, float64(initDone)/float64(time.Millisecond)))
	}
	return rep, nil
}

// SweepAttrs reproduces the demo's "number of attributes" knob: wider
// tuples make tokenizing costlier and the positional map more valuable.
func SweepAttrs(cfg Config, attrCounts []int) (*Report, error) {
	cfg = cfg.fill()
	if len(attrCounts) == 0 {
		attrCounts = []int{5, 10, 25, 50}
	}
	rep := &Report{
		ID:      "SWEEP-ATTRS",
		Title:   "effect of attribute count (query touches the last attribute)",
		Headers: []string{"attrs", "cold_ms", "warm_ms", "cold_tokenized", "warm_tokenized", "warm_map_jumps"},
	}
	for _, na := range attrCounts {
		spec := datagen.IntTable(cfg.Rows, na, cfg.Seed)
		path, _, err := genFile(cfg, fmt.Sprintf("sweepa%d", na), spec)
		if err != nil {
			return nil, err
		}
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		// Positional map only: isolates the tokenizing effect.
		if err := db.RegisterRaw("t", path, spec.SchemaSpec(), &nodb.RawOptions{DisableCache: true}); err != nil {
			db.Close()
			return nil, err
		}
		q := fmt.Sprintf("SELECT a%d FROM t WHERE a%d < 250", na-1, na-1)
		cold, err := db.Query(q)
		if err != nil {
			db.Close()
			return nil, err
		}
		warm, err := db.Query(q)
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.AddRow(na, cold.Stats.Total, warm.Stats.Total,
			cold.Stats.FieldsTokenized, warm.Stats.FieldsTokenized, warm.Stats.MapJumpFields)
		db.Close()
	}
	rep.Notes = append(rep.Notes,
		"cold tokenizing grows with attribute count; warm queries jump via the map and tokenize nothing.")
	return rep, nil
}

// SweepWidth reproduces the demo's "width of attributes" knob.
func SweepWidth(cfg Config, widths []int) (*Report, error) {
	cfg = cfg.fill()
	if len(widths) == 0 {
		widths = []int{4, 16, 64}
	}
	rep := &Report{
		ID:      "SWEEP-WIDTH",
		Title:   "effect of attribute width (text payloads)",
		Headers: []string{"width", "file_mb", "cold_ms", "warm_ms", "warm_bytes_read"},
	}
	for _, w := range widths {
		cols := make([]datagen.ColumnSpec, cfg.Attrs)
		for i := range cols {
			cols[i] = datagen.ColumnSpec{Name: fmt.Sprintf("a%d", i), Kind: kindFor(i), Card: 1000, Width: w}
		}
		spec := datagen.Spec{Rows: cfg.Rows, Cols: cols, Seed: cfg.Seed}
		path, size, err := genFile(cfg, fmt.Sprintf("sweepw%d", w), spec)
		if err != nil {
			return nil, err
		}
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		if err := db.RegisterRaw("t", path, spec.SchemaSpec(), nil); err != nil {
			db.Close()
			return nil, err
		}
		q := fmt.Sprintf("SELECT a%d FROM t", cfg.Attrs/2)
		cold, err := db.Query(q)
		if err != nil {
			db.Close()
			return nil, err
		}
		warm, err := db.Query(q)
		if err != nil {
			db.Close()
			return nil, err
		}
		rep.AddRow(w, fmt.Sprintf("%.1f", float64(size)/(1<<20)), cold.Stats.Total,
			warm.Stats.Total, warm.Stats.BytesRead)
		db.Close()
	}
	rep.Notes = append(rep.Notes,
		"wider attributes inflate raw scans; warm queries serve from the cache and read no file bytes.")
	return rep, nil
}

func kindFor(i int) value.Kind {
	if i%2 == 0 {
		return value.KindText
	}
	return value.KindInt
}

// SweepBudget reproduces the demo's storage sliders: the fraction of
// auxiliary storage vs query performance.
func SweepBudget(cfg Config, budgets []int64) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, size, err := genFile(cfg, "sweepb", spec)
	if err != nil {
		return nil, err
	}
	if len(budgets) == 0 {
		budgets = []int64{size / 20, size / 5, size, 0} // 0 = unlimited
	}
	rep := &Report{
		ID:      "SWEEP-BUDGET",
		Title:   fmt.Sprintf("effect of the auxiliary-storage budget (file %dB)", size),
		Headers: []string{"budget_bytes", "avg_warm_ms", "cache_hits", "evictions", "bytes_read"},
	}
	qs := workload.ShiftingWindows("t", spec.Schema(), 2, 4, cfg.Seed)
	for _, budget := range budgets {
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		opts := &nodb.RawOptions{PosMapBudget: budget, CacheBudget: budget}
		if err := db.RegisterRaw("t", path, spec.SchemaSpec(), opts); err != nil {
			db.Close()
			return nil, err
		}
		// One cold pass, then a measured warm pass of the same queries.
		for _, q := range qs {
			if _, err := db.Query(q.SQL); err != nil {
				db.Close()
				return nil, err
			}
		}
		var total nodb.QueryStats
		for _, q := range qs {
			res, err := db.Query(q.SQL)
			if err != nil {
				db.Close()
				return nil, err
			}
			addStats(&total, res.Stats)
		}
		p, _ := db.Panel("t")
		label := fmt.Sprint(budget)
		if budget == 0 {
			label = "unlimited"
		}
		rep.AddRow(label, fmt.Sprintf("%.3f", float64(total.Total)/float64(time.Millisecond)/float64(len(qs))),
			total.CacheHitFields, p.PosMap.Evictions+p.Cache.Evictions, total.BytesRead)
		db.Close()
	}
	rep.Notes = append(rep.Notes,
		"tighter budgets evict more and fall back to raw access; performance degrades gracefully, never past baseline.")
	return rep, nil
}

// SweepMapGrain reproduces the design knob of the companion SIGMOD paper:
// storing only every i-th tokenized position. A sparser map costs less
// memory; queries landing between stored positions jump to the nearest
// tracked delimiter and tokenize the short gap ("as close as possible").
func SweepMapGrain(cfg Config, everyNth []int) (*Report, error) {
	cfg = cfg.fill()
	if len(everyNth) == 0 {
		everyNth = []int{1, 2, 4, 8}
	}
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, _, err := genFile(cfg, "sweepg", spec)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:    "SWEEP-MAPGRAIN",
		Title: "positional-map granularity (store every Nth tokenized position)",
		Headers: []string{"every_nth", "map_bytes", "probe_ms", "probe_tokenized",
			"probe_near_jumps", "probe_exact_jumps"},
	}
	// The first query touches the last attribute, learning the (thinned)
	// prefix; the probe query touches an attribute unlikely to be a stored
	// multiple, exercising the nearest-jump path.
	warmQ := fmt.Sprintf("SELECT a%d FROM t", cfg.Attrs-1)
	probeAttr := cfg.Attrs/2 + 1
	probeQ := fmt.Sprintf("SELECT a%d FROM t", probeAttr)
	for _, n := range everyNth {
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		opts := &nodb.RawOptions{DisableCache: true, MapEveryNth: n}
		if err := db.RegisterRaw("t", path, spec.SchemaSpec(), opts); err != nil {
			db.Close()
			return nil, err
		}
		if _, err := db.Query(warmQ); err != nil {
			db.Close()
			return nil, err
		}
		probe, err := db.Query(probeQ)
		if err != nil {
			db.Close()
			return nil, err
		}
		p, _ := db.Panel("t")
		rep.AddRow(n, p.PosMap.UsedBytes, probe.Stats.Total,
			probe.Stats.FieldsTokenized, probe.Stats.MapNearFields, probe.Stats.MapJumpFields)
		db.Close()
	}
	rep.Notes = append(rep.Notes,
		"sparser maps shrink memory; probes between stored positions tokenize short gaps from the nearest tracked delimiter.")
	return rep, nil
}

// Ablation isolates each adaptive component over a repeated query: none
// (baseline), positional map only, cache only, both (the paper's PM+C vs
// Baseline comparison, extended to the off-diagonal configurations).
func Ablation(cfg Config) (*Report, error) {
	cfg = cfg.fill()
	spec := datagen.IntTable(cfg.Rows, cfg.Attrs, cfg.Seed)
	path, _, err := genFile(cfg, "ablation", spec)
	if err != nil {
		return nil, err
	}
	// Unfiltered projection: with no predicate every touched attribute is
	// fully converted, so the cache can take over completely and the
	// component separation is clean. (With a filter, projection attributes
	// are converted only for qualifying rows — the paper's "caching never
	// forces extra parsing" — and stay partially uncached; that regime is
	// covered by F3-BREAKDOWN.)
	q := fmt.Sprintf("SELECT a%d, a%d FROM t", cfg.Attrs/3, 2*cfg.Attrs/3)
	configs := []struct {
		name string
		opts *nodb.RawOptions
	}{
		{"none(baseline)", &nodb.RawOptions{DisablePosMap: true, DisableCache: true, DisableStats: true}},
		{"posmap", &nodb.RawOptions{DisableCache: true}},
		{"cache", &nodb.RawOptions{DisablePosMap: true}},
		{"posmap+cache", nil},
	}
	rep := &Report{
		ID:    "ABLATION",
		Title: fmt.Sprintf("component ablation over %d repeats of %s", cfg.Queries, q),
		Headers: []string{"config", "q1_ms", "steady_ms", "steady_tokenized",
			"steady_converted", "steady_cache_hits", "steady_map_jumps", "steady_bytes"},
	}
	for _, c := range configs {
		db, err := nodb.Open(nodb.Config{})
		if err != nil {
			return nil, err
		}
		if err := db.RegisterRaw("t", path, spec.SchemaSpec(), c.opts); err != nil {
			db.Close()
			return nil, err
		}
		first, err := db.Query(q)
		if err != nil {
			db.Close()
			return nil, err
		}
		var steady nodb.QueryStats
		n := cfg.Queries - 1
		if n < 1 {
			n = 1
		}
		for i := 0; i < n; i++ {
			res, err := db.Query(q)
			if err != nil {
				db.Close()
				return nil, err
			}
			addStats(&steady, res.Stats)
		}
		rep.AddRow(c.name, first.Stats.Total,
			fmt.Sprintf("%.3f", float64(steady.Total)/float64(time.Millisecond)/float64(n)),
			steady.FieldsTokenized/int64(n), steady.FieldsConverted/int64(n),
			steady.CacheHitFields/int64(n), steady.MapJumpFields/int64(n),
			steady.BytesRead/int64(n))
		db.Close()
	}
	rep.Notes = append(rep.Notes,
		"posmap removes steady-state tokenizing; cache removes conversion and file reads; PM+C removes both.")
	return rep, nil
}
