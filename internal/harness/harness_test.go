package harness

import (
	"strconv"
	"strings"
	"testing"
)

// smallCfg keeps experiment tests fast.
func smallCfg(t *testing.T) Config {
	return Config{Dir: t.TempDir(), Rows: 4000, Attrs: 6, Queries: 6, Seed: 1}
}

// cell parses a numeric report cell.
func cell(t *testing.T, rep *Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d)=%q not numeric: %v", row, col, rep.Rows[row][col], err)
	}
	return v
}

// colIndex finds a header's position.
func colIndex(t *testing.T, rep *Report, name string) int {
	t.Helper()
	for i, h := range rep.Headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("header %q not in %v", name, rep.Headers)
	return -1
}

func TestFig3Breakdown(t *testing.T) {
	rep, err := Fig3Breakdown(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows=%v", rep.Rows)
	}
	tok := colIndex(t, rep, "tokenized")
	hits := colIndex(t, rep, "cache_hits")
	loadCol := colIndex(t, rep, "load_ms")

	// Load-first: pays load, never tokenizes at query time.
	if cell(t, rep, 0, tok) != 0 || cell(t, rep, 0, loadCol) <= 0 {
		t.Errorf("load-first row wrong: %v", rep.Rows[0])
	}
	// Baseline: tokenizes every query, never hits a cache.
	if cell(t, rep, 1, tok) == 0 || cell(t, rep, 1, hits) != 0 {
		t.Errorf("baseline row wrong: %v", rep.Rows[1])
	}
	// PostgresRaw: tokenizes strictly less than baseline, hits the cache.
	if cell(t, rep, 2, tok) >= cell(t, rep, 1, tok) {
		t.Errorf("postgresraw tokenized %v >= baseline %v", rep.Rows[2][tok], rep.Rows[1][tok])
	}
	if cell(t, rep, 2, hits) == 0 {
		t.Errorf("postgresraw no cache hits: %v", rep.Rows[2])
	}
	if !strings.Contains(rep.String(), "F3-BREAKDOWN") {
		t.Error("render broken")
	}
}

func TestFig2Monitor(t *testing.T) {
	rep, err := Fig2Monitor(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 4 {
		t.Fatalf("rows=%d", len(rep.Rows))
	}
	grains := colIndex(t, rep, "map_grains")
	if cell(t, rep, len(rep.Rows)-1, grains) == 0 {
		t.Error("no positional map grains after workload")
	}
	mapU := colIndex(t, rep, "map_util%")
	last := cell(t, rep, len(rep.Rows)-1, mapU)
	if last <= 0 || last > 101 {
		t.Errorf("map utilization=%v", last)
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "monitoring panel") {
		t.Error("final panel missing")
	}
}

func TestAdaptEpochs(t *testing.T) {
	rep, err := AdaptEpochs(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	tok := colIndex(t, rep, "tokenized")
	epochCol := colIndex(t, rep, "epoch")
	// Find a pair of consecutive same-epoch queries: the later one should
	// tokenize no more than the first of its epoch (adaptation).
	firstTok := map[string]float64{}
	adapted := false
	for r := range rep.Rows {
		ep := rep.Rows[r][epochCol]
		v := cell(t, rep, r, tok)
		if f, ok := firstTok[ep]; ok {
			if v < f {
				adapted = true
			}
		} else {
			firstTok[ep] = v
		}
	}
	if !adapted {
		t.Error("no within-epoch adaptation visible in tokenized counts")
	}
}

func TestUpdatesScenario(t *testing.T) {
	rep, err := UpdatesScenario(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows=%v", rep.Rows)
	}
	ok := colIndex(t, rep, "ok")
	for r := range rep.Rows {
		if rep.Rows[r][ok] != "true" {
			t.Errorf("step %d failed: %v", r+1, rep.Rows[r])
		}
	}
}

func TestRace(t *testing.T) {
	rep, err := Race(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	// First event row is init: postgresraw's init must be the cheapest.
	rawInit := cell(t, rep, 0, 1)
	for c := 2; c < len(rep.Headers); c++ {
		if cell(t, rep, 0, c) <= rawInit {
			t.Errorf("%s init %v <= postgresraw init %v", rep.Headers[c], rep.Rows[0][c], rawInit)
		}
	}
	// Cumulative times must be monotone per contestant.
	for c := 1; c < len(rep.Headers); c++ {
		for r := 1; r < len(rep.Rows); r++ {
			if cell(t, rep, r, c) < cell(t, rep, r-1, c) {
				t.Errorf("column %s not monotone at row %d", rep.Headers[c], r)
			}
		}
	}
	if len(rep.Notes) != 3 {
		t.Errorf("notes=%v", rep.Notes)
	}
}

func TestSweepAttrs(t *testing.T) {
	rep, err := SweepAttrs(smallCfg(t), []int{4, 12})
	if err != nil {
		t.Fatal(err)
	}
	coldTok := colIndex(t, rep, "cold_tokenized")
	warmTok := colIndex(t, rep, "warm_tokenized")
	if cell(t, rep, 1, coldTok) <= cell(t, rep, 0, coldTok) {
		t.Errorf("cold tokenizing did not grow with attrs: %v", rep.Rows)
	}
	for r := range rep.Rows {
		if cell(t, rep, r, warmTok) != 0 {
			t.Errorf("warm query tokenized: %v", rep.Rows[r])
		}
	}
}

func TestSweepWidth(t *testing.T) {
	rep, err := SweepWidth(smallCfg(t), []int{4, 32})
	if err != nil {
		t.Fatal(err)
	}
	wb := colIndex(t, rep, "warm_bytes_read")
	for r := range rep.Rows {
		if cell(t, rep, r, wb) != 0 {
			t.Errorf("warm query read bytes: %v", rep.Rows[r])
		}
	}
}

func TestSweepBudget(t *testing.T) {
	rep, err := SweepBudget(smallCfg(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows=%v", rep.Rows)
	}
	hits := colIndex(t, rep, "cache_hits")
	// Unlimited budget (last row) must hit at least as much as the smallest.
	if cell(t, rep, 3, hits) < cell(t, rep, 0, hits) {
		t.Errorf("unlimited budget hits %v < tiny budget %v", rep.Rows[3][hits], rep.Rows[0][hits])
	}
}

func TestAblation(t *testing.T) {
	rep, err := Ablation(smallCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("rows=%v", rep.Rows)
	}
	tok := colIndex(t, rep, "steady_tokenized")
	conv := colIndex(t, rep, "steady_converted")
	bytes := colIndex(t, rep, "steady_bytes")
	jumps := colIndex(t, rep, "steady_map_jumps")
	// none: tokenizes and converts every time.
	if cell(t, rep, 0, tok) == 0 || cell(t, rep, 0, conv) == 0 {
		t.Errorf("baseline config did no raw work: %v", rep.Rows[0])
	}
	// posmap only: no tokenizing (exact jumps), still converts and reads.
	if cell(t, rep, 1, tok) != 0 || cell(t, rep, 1, conv) == 0 || cell(t, rep, 1, jumps) == 0 {
		t.Errorf("posmap row wrong: %v", rep.Rows[1])
	}
	// cache only: no conversion, no bytes read.
	if cell(t, rep, 2, conv) != 0 || cell(t, rep, 2, bytes) != 0 {
		t.Errorf("cache row wrong: %v", rep.Rows[2])
	}
	// both: nothing raw at all.
	if cell(t, rep, 3, tok) != 0 || cell(t, rep, 3, conv) != 0 || cell(t, rep, 3, bytes) != 0 {
		t.Errorf("PM+C row wrong: %v", rep.Rows[3])
	}
}

func TestRunDispatchAndAll(t *testing.T) {
	cfg := Config{Dir: t.TempDir(), Rows: 1500, Attrs: 5, Queries: 4, Seed: 2}
	for _, id := range []string{"F2", "F3", "ADAPT", "UPDATES", "RACE",
		"SWEEP-ATTRS", "SWEEP-WIDTH", "SWEEP-BUDGET", "SWEEP-MAPGRAIN", "ABLATION"} {
		reps, err := Run(id, cfg)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(reps) != 1 || len(reps[0].Rows) == 0 {
			t.Errorf("%s: empty report", id)
		}
	}
	if _, err := Run("NOPE", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	reps, err := Run("ALL", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 10 {
		t.Errorf("ALL produced %d reports", len(reps))
	}
}

func TestSweepMapGrain(t *testing.T) {
	rep, err := SweepMapGrain(smallCfg(t), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows=%v", rep.Rows)
	}
	mapBytes := colIndex(t, rep, "map_bytes")
	probeTok := colIndex(t, rep, "probe_tokenized")
	near := colIndex(t, rep, "probe_near_jumps")
	// Sparser map uses less memory.
	if cell(t, rep, 1, mapBytes) >= cell(t, rep, 0, mapBytes) {
		t.Errorf("every-8th map not smaller: %v", rep.Rows)
	}
	// Dense map answers the probe exactly; sparse map tokenizes short gaps
	// from nearest tracked positions.
	if cell(t, rep, 0, probeTok) != 0 {
		t.Errorf("dense map probe tokenized: %v", rep.Rows[0])
	}
	if cell(t, rep, 1, probeTok) == 0 || cell(t, rep, 1, near) == 0 {
		t.Errorf("sparse map probe did not use near jumps: %v", rep.Rows[1])
	}
}
