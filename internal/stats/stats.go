// Package stats implements the paper's on-the-fly statistics: per-attribute
// summaries built during in-situ scans, only for attributes that queries
// actually touch, and incrementally augmented as the workload reaches more
// of the file. The optimizer uses them for selectivity estimation exactly as
// a conventional DBMS would use post-load ANALYZE output.
//
// The collector keeps, per touched attribute: row/null counts, min/max, a
// reservoir sample, and a bounded distinct-value set (falling back to a
// sample-based NDV estimate on overflow). Estimation evaluates predicates
// directly against the reservoir sample, plus an equi-depth histogram for
// the monitoring panel.
package stats

import (
	"fmt"
	"sort"
	"sync"

	"nodb/internal/value"
)

// DefaultSampleCap is the reservoir size per attribute when unspecified.
const DefaultSampleCap = 1024

// maxDistinctTracked bounds the exact distinct set per attribute.
const maxDistinctTracked = 4096

// Collector accumulates statistics for one table. Safe for concurrent use.
type Collector struct {
	mu        sync.Mutex
	attrs     []*attrStats
	sampleCap int
	rowCount  int64 // authoritative table row count once a full scan ran
}

type attrStats struct {
	kind     value.Kind
	count    int64 // non-null values observed
	nulls    int64
	min, max value.Value

	sample []value.Value
	seen   int64  // total values offered to the reservoir
	rng    uint64 // xorshift state for reservoir replacement

	distinct     map[distKey]struct{}
	distOverflow bool
}

type distKey struct {
	k value.Kind
	s string
}

// NewCollector creates a collector for a table with nattrs attributes.
func NewCollector(nattrs, sampleCap int) *Collector {
	if sampleCap <= 0 {
		sampleCap = DefaultSampleCap
	}
	return &Collector{attrs: make([]*attrStats, nattrs), sampleCap: sampleCap}
}

// Clear drops all statistics (file rewritten).
func (c *Collector) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.attrs {
		c.attrs[i] = nil
	}
	c.rowCount = 0
}

// SetRowCount records the table's row count (learned when a scan reaches
// EOF for the first time).
func (c *Collector) SetRowCount(n int64) {
	c.mu.Lock()
	c.rowCount = n
	c.mu.Unlock()
}

// RowCount returns the recorded row count (0 when unknown).
func (c *Collector) RowCount() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rowCount
}

// ObserveBatch feeds a batch of sampled values for one attribute. Values
// are the converted binary values the scan produced anyway; the paper's
// point is that statistics creation rides on query execution.
func (c *Collector) ObserveBatch(attr int, kind value.Kind, vals []value.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attr < 0 || attr >= len(c.attrs) {
		return
	}
	a := c.attrs[attr]
	if a == nil {
		a = &attrStats{
			kind:     kind,
			rng:      uint64(attr)*2654435761 + 1,
			distinct: make(map[distKey]struct{}),
		}
		c.attrs[attr] = a
	}
	for _, v := range vals {
		a.observe(v, c.sampleCap)
	}
}

func (a *attrStats) observe(v value.Value, cap int) {
	if v.IsNull() {
		a.nulls++
		return
	}
	a.count++
	if a.min.IsNull() || value.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max.IsNull() || value.Compare(v, a.max) > 0 {
		a.max = v
	}
	// Reservoir sampling (algorithm R).
	a.seen++
	if len(a.sample) < cap {
		a.sample = append(a.sample, v)
	} else {
		a.rng ^= a.rng << 13
		a.rng ^= a.rng >> 7
		a.rng ^= a.rng << 17
		if j := a.rng % uint64(a.seen); j < uint64(cap) {
			a.sample[j] = v
		}
	}
	if !a.distOverflow {
		a.distinct[dk(v)] = struct{}{}
		if len(a.distinct) > maxDistinctTracked {
			a.distOverflow = true
			a.distinct = nil
		}
	}
}

func dk(v value.Value) distKey {
	k := v.K
	if k != value.KindText {
		k = value.KindInt // canonical numeric, matching value.Equal
	}
	return distKey{k: k, s: v.String()}
}

// Has reports whether any statistics exist for the attribute.
func (c *Collector) Has(attr int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return attr >= 0 && attr < len(c.attrs) && c.attrs[attr] != nil
}

// AttrSnapshot is an immutable summary of one attribute's statistics.
type AttrSnapshot struct {
	Attr       int
	Kind       value.Kind
	Count      int64 // non-null observations
	Nulls      int64
	Min, Max   value.Value
	NDV        int64 // distinct-value estimate
	SampleSize int
}

// Snapshot returns the summary for one attribute, ok=false if untouched.
func (c *Collector) Snapshot(attr int) (AttrSnapshot, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attr < 0 || attr >= len(c.attrs) || c.attrs[attr] == nil {
		return AttrSnapshot{}, false
	}
	a := c.attrs[attr]
	return AttrSnapshot{
		Attr:       attr,
		Kind:       a.kind,
		Count:      a.count,
		Nulls:      a.nulls,
		Min:        a.min,
		Max:        a.max,
		NDV:        a.ndvLocked(),
		SampleSize: len(a.sample),
	}, true
}

func (a *attrStats) ndvLocked() int64 {
	if !a.distOverflow {
		return int64(len(a.distinct))
	}
	// Overflowed the exact set: estimate from the sample's distinct ratio.
	seen := make(map[distKey]struct{}, len(a.sample))
	for _, v := range a.sample {
		seen[dk(v)] = struct{}{}
	}
	if len(a.sample) == 0 {
		return 0
	}
	ratio := float64(len(seen)) / float64(len(a.sample))
	est := int64(ratio * float64(a.count))
	if est < int64(len(seen)) {
		est = int64(len(seen))
	}
	return est
}

// Touched returns the attribute indexes that have statistics, in order. The
// paper's adaptivity claim: this set grows as queries reach new attributes.
func (c *Collector) Touched() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int
	for i, a := range c.attrs {
		if a != nil {
			out = append(out, i)
		}
	}
	return out
}

// Selectivity estimates the fraction of rows whose attribute satisfies
// `op operand` (op: = != < <= > >=), by evaluating the predicate over the
// reservoir sample. Falls back to textbook constants when no statistics
// exist (as an optimizer must before the first query touches the column).
func (c *Collector) Selectivity(attr int, op string, operand value.Value) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attr < 0 || attr >= len(c.attrs) || c.attrs[attr] == nil || len(c.attrs[attr].sample) == 0 {
		return defaultSelectivity(op)
	}
	a := c.attrs[attr]
	match := 0
	for _, v := range a.sample {
		cmp := value.Compare(v, operand)
		ok := false
		switch op {
		case "=":
			ok = cmp == 0
		case "!=":
			ok = cmp != 0
		case "<":
			ok = cmp < 0
		case "<=":
			ok = cmp <= 0
		case ">":
			ok = cmp > 0
		case ">=":
			ok = cmp >= 0
		default:
			return defaultSelectivity(op)
		}
		if ok {
			match++
		}
	}
	sel := float64(match) / float64(len(a.sample))
	// Account for nulls (which never satisfy a comparison).
	total := a.count + a.nulls
	if total > 0 {
		sel *= float64(a.count) / float64(total)
	}
	return sel
}

func defaultSelectivity(op string) float64 {
	switch op {
	case "=":
		return 0.05
	case "!=":
		return 0.95
	default:
		return 1.0 / 3
	}
}

// Histogram is an equi-depth histogram over the sample, for the monitoring
// panel and EXPLAIN-style output.
type Histogram struct {
	Attr    int
	Bounds  []value.Value // len = buckets+1; Bounds[i], Bounds[i+1] delimit bucket i
	Depth   int           // sample values per bucket (approximately)
	Samples int
}

// Histogram builds an equi-depth histogram with up to nbuckets buckets.
func (c *Collector) Histogram(attr, nbuckets int) (*Histogram, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if attr < 0 || attr >= len(c.attrs) || c.attrs[attr] == nil {
		return nil, fmt.Errorf("stats: no statistics for attribute %d", attr)
	}
	if nbuckets <= 0 {
		return nil, fmt.Errorf("stats: invalid bucket count %d", nbuckets)
	}
	a := c.attrs[attr]
	if len(a.sample) == 0 {
		return nil, fmt.Errorf("stats: empty sample for attribute %d", attr)
	}
	sorted := make([]value.Value, len(a.sample))
	copy(sorted, a.sample)
	sort.Slice(sorted, func(i, j int) bool { return value.Compare(sorted[i], sorted[j]) < 0 })
	if nbuckets > len(sorted) {
		nbuckets = len(sorted)
	}
	h := &Histogram{Attr: attr, Depth: len(sorted) / nbuckets, Samples: len(sorted)}
	for b := 0; b <= nbuckets; b++ {
		idx := b * (len(sorted) - 1) / nbuckets
		h.Bounds = append(h.Bounds, sorted[idx])
	}
	return h, nil
}
