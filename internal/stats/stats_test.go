package stats

import (
	"math"
	"testing"
	"testing/quick"

	"nodb/internal/value"
)

func observeInts(c *Collector, attr int, vals ...int64) {
	vv := make([]value.Value, len(vals))
	for i, v := range vals {
		vv[i] = value.Int(v)
	}
	c.ObserveBatch(attr, value.KindInt, vv)
}

func TestBasicCounts(t *testing.T) {
	c := NewCollector(3, 16)
	observeInts(c, 0, 5, 1, 9, 1)
	c.ObserveBatch(0, value.KindInt, []value.Value{value.Null()})

	snap, ok := c.Snapshot(0)
	if !ok {
		t.Fatal("no snapshot")
	}
	if snap.Count != 4 || snap.Nulls != 1 {
		t.Errorf("count=%d nulls=%d", snap.Count, snap.Nulls)
	}
	if snap.Min.I != 1 || snap.Max.I != 9 {
		t.Errorf("min=%v max=%v", snap.Min, snap.Max)
	}
	if snap.NDV != 3 {
		t.Errorf("ndv=%d", snap.NDV)
	}
	if snap.SampleSize != 5-1 {
		t.Errorf("sample=%d", snap.SampleSize)
	}
	if !c.Has(0) || c.Has(1) || c.Has(-1) || c.Has(99) {
		t.Error("Has wrong")
	}
}

func TestTouchedGrowsAdaptively(t *testing.T) {
	c := NewCollector(5, 16)
	if len(c.Touched()) != 0 {
		t.Fatal("fresh collector has touched attrs")
	}
	observeInts(c, 2, 1)
	observeInts(c, 4, 1)
	got := c.Touched()
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("touched=%v", got)
	}
}

func TestRowCount(t *testing.T) {
	c := NewCollector(1, 16)
	if c.RowCount() != 0 {
		t.Error("fresh row count nonzero")
	}
	c.SetRowCount(1234)
	if c.RowCount() != 1234 {
		t.Error("row count lost")
	}
}

func TestSelectivityFromSample(t *testing.T) {
	c := NewCollector(1, 1000)
	// 0..99: selectivity of "< 50" should be ~0.5, "= 7" ~0.01.
	for i := int64(0); i < 100; i++ {
		observeInts(c, 0, i)
	}
	cases := []struct {
		op   string
		arg  int64
		want float64
		tol  float64
	}{
		{"<", 50, 0.5, 0.01},
		{"<=", 49, 0.5, 0.01},
		{">", 89, 0.1, 0.01},
		{">=", 90, 0.1, 0.01},
		{"=", 7, 0.01, 0.001},
		{"!=", 7, 0.99, 0.001},
	}
	for _, tc := range cases {
		got := c.Selectivity(0, tc.op, value.Int(tc.arg))
		if math.Abs(got-tc.want) > tc.tol {
			t.Errorf("sel(%s %d)=%f, want %f", tc.op, tc.arg, got, tc.want)
		}
	}
}

func TestSelectivityNullAdjustment(t *testing.T) {
	c := NewCollector(1, 1000)
	// Half the values are null; sel(< 100) over non-nulls is 1.0, overall 0.5.
	vals := make([]value.Value, 0, 100)
	for i := 0; i < 50; i++ {
		vals = append(vals, value.Int(int64(i)), value.Null())
	}
	c.ObserveBatch(0, value.KindInt, vals)
	got := c.Selectivity(0, "<", value.Int(100))
	if math.Abs(got-0.5) > 0.01 {
		t.Errorf("sel=%f, want 0.5", got)
	}
}

func TestSelectivityDefaults(t *testing.T) {
	c := NewCollector(1, 16)
	if got := c.Selectivity(0, "=", value.Int(1)); got != 0.05 {
		t.Errorf("default eq=%f", got)
	}
	if got := c.Selectivity(0, "!=", value.Int(1)); got != 0.95 {
		t.Errorf("default ne=%f", got)
	}
	if got := c.Selectivity(0, "<", value.Int(1)); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("default lt=%f", got)
	}
	observeInts(c, 0, 1, 2, 3)
	if got := c.Selectivity(0, "LIKE", value.Text("x")); math.Abs(got-1.0/3) > 1e-9 {
		t.Errorf("unknown op=%f", got)
	}
}

func TestReservoirBounded(t *testing.T) {
	c := NewCollector(1, 32)
	for i := int64(0); i < 10_000; i++ {
		observeInts(c, 0, i)
	}
	snap, _ := c.Snapshot(0)
	if snap.SampleSize != 32 {
		t.Errorf("sample size=%d, want 32", snap.SampleSize)
	}
	if snap.Count != 10_000 {
		t.Errorf("count=%d", snap.Count)
	}
	if snap.Min.I != 0 || snap.Max.I != 9999 {
		t.Errorf("min/max=%v/%v", snap.Min, snap.Max)
	}
}

func TestReservoirIsRepresentative(t *testing.T) {
	c := NewCollector(1, 256)
	for i := int64(0); i < 100_000; i++ {
		observeInts(c, 0, i%1000)
	}
	// Median of the sample should be near 500.
	sel := c.Selectivity(0, "<", value.Int(500))
	if math.Abs(sel-0.5) > 0.12 {
		t.Errorf("sampled sel=%f, want ~0.5", sel)
	}
}

func TestNDVOverflowEstimate(t *testing.T) {
	c := NewCollector(1, 512)
	n := int64(3 * maxDistinctTracked)
	for i := int64(0); i < n; i++ {
		observeInts(c, 0, i) // all distinct
	}
	snap, _ := c.Snapshot(0)
	// Exact tracking overflowed; the estimate should be within 2x of truth.
	if snap.NDV < n/2 || snap.NDV > 2*n {
		t.Errorf("ndv=%d, want ~%d", snap.NDV, n)
	}
}

func TestHistogram(t *testing.T) {
	c := NewCollector(1, 1000)
	for i := int64(0); i < 100; i++ {
		observeInts(c, 0, i)
	}
	h, err := c.Histogram(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Bounds) != 5 {
		t.Fatalf("bounds=%v", h.Bounds)
	}
	if h.Bounds[0].I != 0 || h.Bounds[4].I != 99 {
		t.Errorf("extremes=%v..%v", h.Bounds[0], h.Bounds[4])
	}
	// Equi-depth on uniform data: interior bounds near quartiles.
	for i, want := range []int64{24, 49, 74} {
		if got := h.Bounds[i+1].I; math.Abs(float64(got-want)) > 2 {
			t.Errorf("bound %d=%d, want ~%d", i+1, got, want)
		}
	}
	// Errors.
	if _, err := c.Histogram(0, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := c.Histogram(5, 4); err == nil {
		t.Error("unknown attr accepted")
	}
}

func TestHistogramMoreBucketsThanSamples(t *testing.T) {
	c := NewCollector(1, 16)
	observeInts(c, 0, 3, 1, 2)
	h, err := c.Histogram(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Bounds) != 4 { // clamped to 3 buckets
		t.Errorf("bounds=%v", h.Bounds)
	}
}

func TestClear(t *testing.T) {
	c := NewCollector(2, 16)
	observeInts(c, 0, 1, 2)
	c.SetRowCount(99)
	c.Clear()
	if c.Has(0) || c.RowCount() != 0 {
		t.Error("clear incomplete")
	}
}

func TestObserveBatchOutOfRange(t *testing.T) {
	c := NewCollector(1, 16)
	c.ObserveBatch(-1, value.KindInt, []value.Value{value.Int(1)})
	c.ObserveBatch(5, value.KindInt, []value.Value{value.Int(1)})
	if len(c.Touched()) != 0 {
		t.Error("out-of-range attr created stats")
	}
}

func TestSelectivityQuickInUnitRange(t *testing.T) {
	f := func(vals []int64, probe int64) bool {
		c := NewCollector(1, 128)
		observeInts(c, 0, vals...)
		for _, op := range []string{"=", "!=", "<", "<=", ">", ">="} {
			s := c.Selectivity(0, op, value.Int(probe))
			if s < 0 || s > 1 || math.IsNaN(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinMaxWithText(t *testing.T) {
	c := NewCollector(1, 16)
	c.ObserveBatch(0, value.KindText, []value.Value{
		value.Text("banana"), value.Text("apple"), value.Text("cherry"),
	})
	snap, _ := c.Snapshot(0)
	if snap.Min.S != "apple" || snap.Max.S != "cherry" {
		t.Errorf("min=%v max=%v", snap.Min, snap.Max)
	}
}
