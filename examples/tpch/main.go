// TPC-H-flavored in-situ analytics: the SIGMOD companion paper evaluates
// PostgresRaw on TPC-H data. This example generates a lineitem-like CSV and
// runs simplified Q1 (pricing summary) and Q6 (forecasting revenue change)
// directly on the raw file — first cold, then adapted — and prints the plan
// the optimizer chose.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nodb"
	"nodb/internal/datagen"
	"nodb/internal/value"
)

func lineitemSpec(rows int) datagen.Spec {
	return datagen.Spec{
		Rows: rows,
		Seed: 19,
		Cols: []datagen.ColumnSpec{
			{Name: "orderkey", Kind: value.KindInt, Card: int64(rows), Dist: datagen.Sequential},
			{Name: "partkey", Kind: value.KindInt, Card: 20000},
			{Name: "quantity", Kind: value.KindInt, Card: 50},
			{Name: "extendedprice", Kind: value.KindFloat, Card: 100000},
			{Name: "discount", Kind: value.KindFloat, Card: 1}, // 0.00-0.99
			{Name: "tax", Kind: value.KindFloat, Card: 1},
			{Name: "returnflag", Kind: value.KindText, Card: 3},
			{Name: "linestatus", Kind: value.KindText, Card: 2},
			{Name: "shipdate", Kind: value.KindDate, Card: 2500},
			{Name: "comment", Kind: value.KindText, Card: 5000, Width: 27},
		},
	}
}

func main() {
	dir, err := os.MkdirTemp("", "nodb-tpch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := lineitemSpec(300_000)
	csv := filepath.Join(dir, "lineitem.csv")
	size, err := spec.WriteFile(csv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lineitem: %d rows, %.1f MB — registered with zero loading\n\n",
		spec.Rows, float64(size)/(1<<20))

	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.RegisterRaw("lineitem", csv, spec.SchemaSpec(), nil); err != nil {
		log.Fatal(err)
	}

	// Simplified TPC-H Q1: pricing summary report.
	q1 := `SELECT returnflag, linestatus,
	              SUM(quantity), SUM(extendedprice),
	              AVG(quantity), AVG(extendedprice), AVG(discount), COUNT(*)
	       FROM lineitem
	       WHERE shipdate <= '1975-01-01'
	       GROUP BY returnflag, linestatus
	       ORDER BY returnflag, linestatus`
	// Simplified TPC-H Q6: revenue from discounted small orders.
	q6 := `SELECT SUM(extendedprice * discount)
	       FROM lineitem
	       WHERE discount BETWEEN 0.05 AND 0.95 AND quantity < 24`

	for name, q := range map[string]string{"Q1": q1, "Q6": q6} {
		plan, err := db.Query("EXPLAIN " + q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s plan ---\n", name)
		for _, r := range plan.Rows {
			fmt.Println(r[0])
		}
		cold, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		warm, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s results (cold %v, adapted %v) ---\n", name, cold.Stats.Total, warm.Stats.Total)
		fmt.Print(cold)
		fmt.Println()
	}

	p, _ := db.Panel("lineitem")
	fmt.Print(p)
}
