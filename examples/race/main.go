// Race: the Part-III "friendly race". Four engines get the same raw file
// and the same query sequence. PostgresRaw starts answering immediately;
// the conventional engines must load (and DBMS X builds an index) first.
// The output shows cumulative time-to-answer for every query.
package main

import (
	"fmt"
	"log"
	"os"

	"nodb/internal/harness"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-race-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	rep, err := harness.Race(harness.Config{
		Dir:     dir,
		Rows:    300_000,
		Attrs:   10,
		Queries: 8,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep)
}
