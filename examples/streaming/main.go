// Command streaming demonstrates the streaming query API over a large raw
// file: the first rows of a scan arrive long before the file has been read,
// an early Rows.Close abandons the unread remainder, a context deadline
// cancels a running scan, and a prepared statement reuses its cached plan
// skeleton across parameterized executions.
//
// Everything runs over a generated CSV that is never loaded — the point of
// NoDB — so the interesting numbers are how little of the file each step
// touched (QueryStats.RowsScanned / BytesRead).
package main

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"nodb"
)

const rows = 400_000

func main() {
	dir, err := os.MkdirTemp("", "nodb-streaming-*")
	check(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "events.csv")
	check(writeEvents(path, rows))

	db, err := nodb.Open(nodb.Config{})
	check(err)
	defer db.Close()
	check(db.RegisterRaw("events", path, "id:int,kind:text,val:float", nil))

	// 1. Early termination: take the first 5 matches of a scan that would
	// touch the whole 400k-row file, then Close. The stats show how little
	// of the file was actually processed.
	fmt.Println("== first 5 matches, then Close ==")
	r, err := db.QueryContext(context.Background(), "SELECT id, kind, val FROM events WHERE val > ?", 0.99)
	check(err)
	n := 0
	for r.Next() && n < 5 {
		var id int64
		var kind string
		var val float64
		check(r.Scan(&id, &kind, &val))
		fmt.Printf("  id=%-8d kind=%-8s val=%.4f\n", id, kind, val)
		n++
	}
	check(r.Close())
	st := r.Stats()
	fmt.Printf("  scanned %d of %d rows (%.1f%%), read %d bytes, in %v\n\n",
		st.RowsScanned, rows, 100*float64(st.RowsScanned)/rows, st.BytesRead, st.Total.Round(time.Millisecond))

	// 2. Cancellation: a context deadline aborts a full aggregation scan at
	// the next chunk boundary. The structures keep only what was committed,
	// so the next query still benefits from the prefix.
	fmt.Println("== cancelling a full scan after 2ms ==")
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	r2, err := db.QueryContext(ctx, "SELECT kind, COUNT(*) FROM events GROUP BY kind")
	if err == nil {
		for r2.Next() {
		}
		err = r2.Err()
		r2.Close()
	}
	cancel()
	fmt.Printf("  query ended with: %v\n\n", err)

	// 3. Prepared statement: the parse/resolve work happens once; repeated
	// executions with different bindings hit the plan cache (PlanCacheHits).
	fmt.Println("== prepared statement reuse ==")
	stmt, err := db.Prepare("SELECT COUNT(*) FROM events WHERE kind = ? AND val < ?")
	check(err)
	defer stmt.Close()
	for _, kind := range []string{"click", "view", "buy"} {
		res, err := stmt.Query(kind, 0.5)
		check(err)
		fmt.Printf("  kind=%-6s -> %v  (plan cache hit: %d)\n", kind, res.Rows[0][0], res.Stats.PlanCacheHits)
	}
}

// writeEvents generates the demo file: id, kind, val.
func writeEvents(path string, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	rng := rand.New(rand.NewSource(42))
	kinds := []string{"click", "view", "buy"}
	for i := 0; i < n; i++ {
		fmt.Fprintf(w, "%d,%s,%.6f\n", i, kinds[rng.Intn(len(kinds))], rng.Float64())
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "streaming:", err)
		os.Exit(1)
	}
}
