// Adaptation: the Part-II demo scenario. A workload of select-project
// queries moves through the file in epochs; watch response times drop
// within an epoch as the positional map and cache learn the touched region,
// jump at each epoch boundary, and old regions get evicted under the
// storage budget.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nodb"
	"nodb/internal/datagen"
	"nodb/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-adaptation-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := datagen.IntTable(150_000, 12, 7)
	csv := filepath.Join(dir, "wide.csv")
	size, err := spec.WriteFile(csv)
	if err != nil {
		log.Fatal(err)
	}

	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Budgets around a third of the file force the structures to choose
	// what to keep — the adaptive regime the demo visualizes.
	opts := &nodb.RawOptions{PosMapBudget: size / 3, CacheBudget: size / 3}
	if err := db.RegisterRaw("t", csv, spec.SchemaSpec(), opts); err != nil {
		log.Fatal(err)
	}

	qs := workload.ShiftingWindows("t", spec.Schema(), 3, 5, 7)
	fmt.Printf("%-3s %-5s %-9s %-10s %-10s %-10s %s\n",
		"q", "epoch", "time", "tokenized", "cachehits", "mapjumps", "sql")
	lastEpoch := -1
	for i, q := range qs {
		if q.Epoch != lastEpoch {
			fmt.Printf("--- epoch %d ---\n", q.Epoch)
			lastEpoch = q.Epoch
		}
		res, err := db.Query(q.SQL)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-3d %-5d %-9v %-10d %-10d %-10d %s\n",
			i+1, q.Epoch, res.Stats.Total.Round(100_000), res.Stats.FieldsTokenized,
			res.Stats.CacheHitFields, res.Stats.MapJumpFields, q.SQL)
	}

	fmt.Println()
	p, err := db.Panel("t")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p)
}
