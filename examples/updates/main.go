// Updates: the Part-II updates scenario. The raw file is modified outside
// the database — first an append (as if a user edited it in a text editor),
// then a full replacement — and the very next query reflects the change.
// Appends keep everything learned about the unchanged prefix; rewrites
// discard the structures, which then re-adapt.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nodb"
	"nodb/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-updates-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	spec := datagen.IntTable(50_000, 6, 5)
	csv := filepath.Join(dir, "live.csv")
	if _, err := spec.WriteFile(csv); err != nil {
		log.Fatal(err)
	}

	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	if err := db.RegisterRaw("t", csv, spec.SchemaSpec(), nil); err != nil {
		log.Fatal(err)
	}

	count := func(label string) {
		res, err := db.Query("SELECT COUNT(*) FROM t")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s COUNT(*) = %v  (%v)\n", label, res.Rows[0][0], res.Stats.Total)
	}

	count("initial")
	db.Query("SELECT a0, a1 FROM t WHERE a0 < 100") // warm the structures

	// Append rows, as a user would with a text editor.
	f, err := os.OpenFile(csv, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		fmt.Fprintln(f, "1,2,3,4,5,6")
	}
	f.Close()
	count("after appending 1000 rows")

	p, _ := db.Panel("t")
	fmt.Printf("structures kept after append: %d map grains, %d cache fragments\n",
		p.PosMap.Grains, p.Cache.Fragments)

	// Replace the file outright ("here is a pointer to a new data file").
	smaller := datagen.IntTable(10_000, 6, 9)
	if _, err := smaller.WriteFile(csv); err != nil {
		log.Fatal(err)
	}
	count("after replacing the file")

	p, _ = db.Panel("t")
	fmt.Printf("structures after rewrite: %d map grains, %d cache fragments (discarded, re-adapting)\n",
		p.PosMap.Grains, p.Cache.Fragments)
}
