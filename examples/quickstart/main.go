// Quickstart: register a raw CSV file and query it immediately — no
// loading. The second query is faster because the first one, as a side
// effect, populated the positional map and cache.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nodb"
	"nodb/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A log-like file: id, user, score, grp, note.
	spec := datagen.MixedTable(200_000, 42)
	csv := filepath.Join(dir, "events.csv")
	size, err := spec.WriteFile(csv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %s (%.1f MB)\n\n", csv, float64(size)/(1<<20))

	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Zero data-to-query time: registration does not read the file.
	if err := db.RegisterRaw("events", csv, spec.SchemaSpec(), nil); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"SELECT COUNT(*) FROM events",
		"SELECT grp, COUNT(*) AS n, AVG(score) FROM events GROUP BY grp ORDER BY n DESC LIMIT 5",
		"SELECT user, score FROM events WHERE score > 9900.0 ORDER BY score DESC LIMIT 5",
		// Repeat the aggregation: now it is served by the adaptive cache.
		"SELECT grp, COUNT(*) AS n, AVG(score) FROM events GROUP BY grp ORDER BY n DESC LIMIT 5",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(">", q)
		fmt.Print(res)
		fmt.Printf("-- %v (%s)\n\n", res.Stats.Total, res.Stats.Breakdown())
	}

	p, err := db.Panel("events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(p)
}
