// Quickstart: point the engine at raw CSV files with one SQL statement and
// query them immediately — no loading, no Go registration code. The catalog
// is driven entirely through DDL (CREATE EXTERNAL TABLE via Exec), the
// LOCATION is a glob, so the day's shard files form one table, and the
// second aggregation is faster because the first one, as a side effect,
// populated each shard's positional map and cache.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"nodb"
	"nodb/internal/datagen"
)

func main() {
	dir, err := os.MkdirTemp("", "nodb-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A log-like dataset (id, user, score, grp, note) written as four shard
	// files, the way a collector would rotate them.
	var total int64
	for shard := 0; shard < 4; shard++ {
		spec := datagen.MixedTable(50_000, int64(42+shard))
		size, err := spec.WriteFile(filepath.Join(dir, fmt.Sprintf("events-%02d.csv", shard)))
		if err != nil {
			log.Fatal(err)
		}
		total += size
	}
	fmt.Printf("generated %s/events-*.csv (%.1f MB in 4 shards)\n\n", dir, float64(total)/(1<<20))

	db, err := nodb.Open(nodb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Zero data-to-query time: registration does not read the files. The
	// glob makes each matched file one shard with its own adaptive
	// structures; the schema clause is omitted, so it is inferred from a
	// sample of the first shard.
	ctx := context.Background()
	if err := db.Exec(ctx, fmt.Sprintf(
		"CREATE EXTERNAL TABLE events USING raw LOCATION '%s'",
		filepath.Join(dir, "events-*.csv"))); err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"SHOW TABLES",
		"DESCRIBE events",
		"SELECT COUNT(*) FROM events",
		"SELECT c3, COUNT(*) AS n, AVG(c2) FROM events GROUP BY c3 ORDER BY n DESC LIMIT 5",
		// Repeat the aggregation: now it is served by the adaptive caches.
		"SELECT c3, COUNT(*) AS n, AVG(c2) FROM events GROUP BY c3 ORDER BY n DESC LIMIT 5",
	}
	for _, q := range queries {
		res, err := db.Query(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(">", q)
		fmt.Print(res)
		fmt.Printf("-- %v (%s)\n\n", res.Stats.Total, res.Stats.Breakdown())
	}

	// One monitoring panel per shard (Figure 2 of the paper, times four).
	panels, err := db.Panels("events")
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range panels {
		fmt.Print(p)
	}
}
