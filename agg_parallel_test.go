package nodb

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// openParallel registers path as raw table "t" on a DB pinned to the given
// scan parallelism.
func openParallel(t *testing.T, path string, par int) *DB {
	t.Helper()
	db, err := Open(Config{Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	if err := db.RegisterRaw("t", path, testSpec, nil); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestAggParallelismEquivalence is the SQL-level acceptance test for
// worker-side partial aggregation: GROUP BY, COUNT(DISTINCT) and global
// aggregates return byte-identical rows, in identical group order, with
// identical deterministic breakdown counters at Parallelism 1, 2 and 8 —
// cold and warm — including under LIMIT (early close) and for
// one-group-per-row cardinality.
func TestAggParallelismEquivalence(t *testing.T) {
	path := writeCSV(t, 3000)
	queries := []string{
		// Plain GROUP BY; no ORDER BY, so group order itself is under test.
		"SELECT grp, COUNT(*), SUM(score), MIN(id), MAX(name) FROM t GROUP BY grp",
		// DISTINCT aggregates (seen-set union across partials).
		"SELECT grp, COUNT(DISTINCT name), COUNT(DISTINCT flag), SUM(DISTINCT score) FROM t GROUP BY grp",
		// Global aggregates (single merged group).
		"SELECT COUNT(*), COUNT(DISTINCT grp), SUM(score), AVG(score), MIN(name) FROM t",
		// Filter pushed into the scan below the fold.
		"SELECT grp, COUNT(*), AVG(score) FROM t WHERE id < 1500 AND flag GROUP BY grp",
		// One group per row: worst-case group cardinality.
		"SELECT id, COUNT(*), SUM(score) FROM t GROUP BY id",
		// Early close: LIMIT stops the consumer after two groups.
		"SELECT grp, COUNT(*) FROM t GROUP BY grp LIMIT 2",
		// HAVING and ORDER BY above the merged aggregation.
		"SELECT grp, COUNT(*) AS n FROM t GROUP BY grp HAVING COUNT(*) > 100 ORDER BY n DESC, grp",
	}
	type outcome struct {
		rows     [][]any
		counters [4]int64
	}
	for _, q := range queries {
		var want *outcome
		for _, par := range []int{1, 2, 8} {
			db := openParallel(t, path, par)
			for pass, label := range []string{"cold", "warm"} {
				res, err := db.Query(q)
				if err != nil {
					t.Fatalf("par=%d %s %q: %v", par, label, q, err)
				}
				got := outcome{rows: res.Rows, counters: [4]int64{
					res.Stats.RowsScanned, res.Stats.FieldsConverted,
					res.Stats.PartialGroups, res.Stats.CacheHitFields,
				}}
				if pass == 1 {
					// Warm counters legitimately differ from cold (cache
					// serves fields); only the rows must match.
					got.counters = want.counters
				}
				if want == nil {
					want = &got
					continue
				}
				if !reflect.DeepEqual(got.rows, want.rows) {
					t.Errorf("par=%d %s %q rows differ:\n%v\nvs\n%v", par, label, q, got.rows, want.rows)
				}
				if got.counters != want.counters {
					t.Errorf("par=%d %s %q counters differ: %v vs %v", par, label, q, got.counters, want.counters)
				}
			}
			// Fresh want for counters on the next parallelism? No — cold
			// counters must match across parallelism too, so keep want.
		}
		if want != nil && strings.Contains(q, "GROUP BY") && want.counters[2] == 0 &&
			!strings.Contains(q, "LIMIT") {
			t.Errorf("%q: pushdown never engaged (PartialGroups=0)", q)
		}
	}
}

// TestAggParallelismEmptyInput checks the empty-file edges at every
// parallelism: zero groups for GROUP BY, one NULL/zero row for globals.
func TestAggParallelismEmptyInput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.csv")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		db := openParallel(t, path, par)
		res, err := db.Query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 0 {
			t.Errorf("par=%d: empty GROUP BY returned %v", par, res.Rows)
		}
		res, err = db.Query("SELECT COUNT(*), SUM(score), COUNT(DISTINCT name) FROM t")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 || res.Rows[0][0].(int64) != 0 || res.Rows[0][1] != nil ||
			res.Rows[0][2].(int64) != 0 {
			t.Errorf("par=%d: empty global aggregate=%v", par, res.Rows)
		}
	}
}

// TestAggPushdownVisibleInExplain pins the plan surface: a single-table
// aggregation advertises the worker-side partials, a join aggregation does
// not, and EXPLAIN still does not execute the scan.
func TestAggPushdownVisibleInExplain(t *testing.T) {
	db := openDB(t)
	path := writeCSV(t, 100)
	db.RegisterRaw("t", path, testSpec, nil)
	db.RegisterRaw("u", path, testSpec, nil)

	out := explainLines(t, db, "EXPLAIN SELECT grp, COUNT(*) FROM t GROUP BY grp")
	if !strings.Contains(out, "partial=workers") {
		t.Errorf("single-table aggregation not pushed down:\n%s", out)
	}
	p, _ := db.Panel("t")
	if p.RowCount != -1 {
		t.Error("EXPLAIN executed the pushed-down scan")
	}

	out = explainLines(t, db,
		"EXPLAIN SELECT t.grp, COUNT(*) FROM t JOIN u ON t.id = u.id GROUP BY t.grp")
	if strings.Contains(out, "partial=workers") {
		t.Errorf("join aggregation claims pushdown:\n%s", out)
	}
}

// TestAggPushdownChargesProcessing checks the paper-style accounting end to
// end: a GROUP BY query reports Processing time (the fold/merge work) and
// folds partial groups, and the PartialGroups counter reaches QueryStats.
func TestAggPushdownChargesProcessing(t *testing.T) {
	path := writeCSV(t, 5000)
	db := openParallel(t, path, 2)
	res, err := db.Query("SELECT grp, COUNT(*), SUM(score), COUNT(DISTINCT name) FROM t GROUP BY grp")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PartialGroups == 0 {
		t.Error("PartialGroups counter did not move")
	}
	if res.Stats.Processing <= 0 {
		t.Errorf("aggregation charged no Processing time: %s", res.Stats.Breakdown())
	}
	if fmt.Sprint(res.Rows[0][1]) == "0" {
		t.Errorf("bogus result: %v", res.Rows)
	}
}
